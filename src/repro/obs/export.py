"""Standard-format exports of a recorded trace.

A trace JSONL (:mod:`repro.obs.trace`) is already the ground truth; this
module converts it — losslessly — into the two interchange formats the
rest of the profiling world reads:

* **Chrome trace-event JSON** (:func:`to_chrome`) — loadable in Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.  Spans become
  complete (``"ph": "X"``) events on the main track; instant records
  (``km_progress``, ``suite_start``, …) become instant (``"ph": "i"``)
  events; and per-job records become job-level slices — on the main
  track for serial runs (``job_start``/``job_finish`` pairs), or on
  synthetic per-worker lanes for ``--workers N`` runs, reconstructed
  from the parent-side ``job_submit``/``job_finish`` re-emission (worker
  processes never write the parent's trace, so lanes are inferred from
  job intervals, not PIDs).  Every field of the original record that the
  mapping itself doesn't consume rides along under ``args`` — nothing
  recorded is dropped.
* **speedscope JSON** (:func:`to_speedscope`) —
  https://www.speedscope.app.  Two profiles in one file: an *evented*
  profile of the span tree (time-ordered open/close events, so the
  nesting of ``verify`` → ``explore`` → witness spans renders as a
  flamechart), and a *sampled* profile of the estimated per-phase
  seconds from :mod:`repro.perf.phases` (one weighted frame per phase —
  the breakdown table of ``repro report``, as a picture).

Both exporters are pure functions of the parsed event list and write
with sorted keys, so identical traces export to identical bytes (the
golden-file tests rely on it).

CLI: ``python -m repro report FILE --export chrome|speedscope --out F``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.perf.phases import PHASE_NAMES, PhaseTimers

#: pid of the main (tracing) process track in the Chrome export.
MAIN_PID = 1
#: pid of the synthetic worker-lane process in the Chrome export.
WORKERS_PID = 2

#: Record keys the Chrome mapping consumes (everything else → ``args``).
_CONSUMED = frozenset({"ev", "t", "dur", "name"})


def _micros(seconds: float) -> int:
    return int(round(seconds * 1_000_000))


def _args_of(record: dict, *, keep_name: bool = False) -> dict:
    """The record's unconsumed fields — the lossless remainder."""
    consumed = _CONSUMED - {"name"} if keep_name else _CONSUMED
    return {k: v for k, v in record.items() if k not in consumed}


def _job_intervals(events: Iterable[dict]) -> tuple[list[dict], list[dict]]:
    """Split per-job records into serial slices and parallel intervals.

    Serial runs emit ``job_start`` in the tracing process, so finishes
    pair with starts by key (FIFO per key — a key can recur across
    batches in one trace).  Parallel runs emit ``job_submit`` instead,
    and the job's real start never reached the parent's clock: the
    interval is reconstructed as ``finish.t - total_seconds`` (clamped
    to the submit time), which is exact up to pool dispatch latency.
    """
    starts: dict[str, list[dict]] = {}
    submits: dict[str, list[dict]] = {}
    serial: list[dict] = []
    parallel: list[dict] = []
    for record in events:
        kind = record.get("ev")
        key = str(record.get("key", ""))
        if kind == "job_start":
            starts.setdefault(key, []).append(record)
        elif kind == "job_submit":
            submits.setdefault(key, []).append(record)
        elif kind == "job_finish":
            finish_t = float(record.get("t", 0.0))
            queue = starts.get(key)
            if queue:
                start = queue.pop(0)
                serial.append(
                    {
                        "name": str(record.get("name", key[:12])),
                        "start": float(start.get("t", finish_t)),
                        "end": finish_t,
                        "record": record,
                    }
                )
                continue
            total = float(record.get("total_seconds") or 0.0)
            begin = finish_t - total
            queue = submits.get(key)
            if queue:
                begin = max(begin, float(queue.pop(0).get("t", 0.0)))
            parallel.append(
                {
                    "name": str(record.get("name", key[:12])),
                    "start": min(begin, finish_t),
                    "end": finish_t,
                    "record": record,
                }
            )
    return serial, parallel


def _assign_lanes(intervals: list[dict]) -> int:
    """Greedy first-fit lane assignment for overlapping job intervals
    (sets ``interval["lane"]``); returns the number of lanes used."""
    ends: list[float] = []
    for interval in sorted(intervals, key=lambda iv: (iv["start"], iv["end"])):
        for lane, end in enumerate(ends):
            if end <= interval["start"]:
                interval["lane"] = lane
                ends[lane] = interval["end"]
                break
        else:
            interval["lane"] = len(ends)
            ends.append(interval["end"])
    return len(ends)


def to_chrome(events: list[dict]) -> dict:
    """The trace as a Chrome trace-event JSON object (Perfetto-loadable)."""
    serial, parallel = _job_intervals(events)
    lanes = _assign_lanes(parallel)

    timed: list[tuple[int, int, dict]] = []  # (ts, order, event) for sorting
    order = 0

    def emit(ts: int, entry: dict) -> None:
        nonlocal order
        timed.append((ts, order, entry))
        order += 1

    for record in events:
        kind = record.get("ev")
        ts = _micros(float(record.get("t", 0.0)))
        if kind == "span":
            emit(
                ts,
                {
                    "ph": "X",
                    "name": str(record.get("name", "span")),
                    "cat": "span",
                    "ts": ts,
                    "dur": _micros(float(record.get("dur", 0.0))),
                    "pid": MAIN_PID,
                    "tid": 1,
                    "args": _args_of(record),
                },
            )
        elif kind in ("job_start", "job_finish", "job_submit"):
            continue  # re-emitted below as job slices (lossless: the
            # finish record, which carries every field, rides its slice)
        else:
            emit(
                ts,
                {
                    "ph": "i",
                    "name": str(kind),
                    "cat": "event",
                    "ts": ts,
                    "pid": MAIN_PID,
                    "tid": 1,
                    "s": "t",
                    "args": _args_of(record, keep_name=True),
                },
            )
    for interval in serial:
        ts = _micros(interval["start"])
        emit(
            ts,
            {
                "ph": "X",
                "name": interval["name"],
                "cat": "job",
                "ts": ts,
                "dur": _micros(interval["end"] - interval["start"]),
                "pid": MAIN_PID,
                "tid": 1,
                "args": _args_of(interval["record"], keep_name=True),
            },
        )
    for interval in parallel:
        ts = _micros(interval["start"])
        emit(
            ts,
            {
                "ph": "X",
                "name": interval["name"],
                "cat": "job",
                "ts": ts,
                "dur": _micros(interval["end"] - interval["start"]),
                "pid": WORKERS_PID,
                "tid": interval["lane"] + 1,
                "args": _args_of(interval["record"], keep_name=True),
            },
        )

    meta: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": MAIN_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": MAIN_PID,
            "tid": 1,
            "ts": 0,
            "args": {"name": "main"},
        },
    ]
    if lanes:
        meta.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": WORKERS_PID,
                "tid": 0,
                "ts": 0,
                "args": {"name": "repro workers"},
            }
        )
        for lane in range(lanes):
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": WORKERS_PID,
                    "tid": lane + 1,
                    "ts": 0,
                    "args": {"name": f"worker lane {lane + 1}"},
                }
            )

    timed.sort(key=lambda item: (item[0], item[1]))
    return {
        "displayTimeUnit": "ms",
        "traceEvents": meta + [entry for _ts, _order, entry in timed],
    }


# ----------------------------------------------------------------------
# speedscope
# ----------------------------------------------------------------------
def _span_label(record: dict) -> str:
    """A speedscope frame name for a span: the span name plus its most
    identifying field (``explore: root search``, ``summary: Flight``)."""
    name = str(record.get("name", "span"))
    for field in ("what", "task", "property"):
        if record.get(field):
            return f"{name}: {record[field]}"
    return name


def to_speedscope(events: list[dict]) -> dict:
    """The trace as a speedscope file: the span tree as an evented
    flamechart profile plus the estimated per-phase seconds as a
    sampled profile."""
    frames: list[dict] = []
    frame_index: dict[str, int] = {}

    def frame_of(label: str) -> int:
        index = frame_index.get(label)
        if index is None:
            index = frame_index[label] = len(frames)
            frames.append({"name": label})
        return index

    # -- evented profile: properly nested open/close from span intervals
    intervals = []
    for record in events:
        if record.get("ev") != "span":
            continue
        start = float(record.get("t", 0.0))
        end = start + float(record.get("dur", 0.0))
        intervals.append((start, end, _span_label(record)))
    intervals.sort(key=lambda iv: (iv[0], -iv[1]))

    span_events: list[dict] = []
    stack: list[tuple[float, int]] = []  # (end, frame)
    cursor = 0.0
    end_value = max((end for _s, end, _l in intervals), default=0.0)

    def close_until(at: float) -> None:
        nonlocal cursor
        while stack and stack[-1][0] <= at:
            end, frame = stack.pop()
            cursor = max(cursor, end)
            span_events.append({"type": "C", "frame": frame, "at": round(cursor, 6)})

    for start, end, label in intervals:
        close_until(start)
        if stack:
            # spans recorded at exit can carry sub-microsecond overhangs
            # past their parent; clamp so the profile stays well-nested
            end = min(end, stack[-1][0])
        cursor = max(cursor, start)
        frame = frame_of(label)
        span_events.append({"type": "O", "frame": frame, "at": round(cursor, 6)})
        stack.append((max(end, cursor), frame))
    close_until(float("inf"))

    profiles: list[dict] = [
        {
            "type": "evented",
            "name": "spans",
            "unit": "seconds",
            "startValue": 0,
            "endValue": round(max(end_value, cursor), 6),
            "events": span_events,
        }
    ]

    # -- sampled profile: estimated seconds per phase, one frame each
    merged: dict[str, dict] = {}
    for record in events:
        source = record.get("phases")
        if record.get("ev") == "job_finish" and isinstance(source, dict):
            for name, entry in source.items():
                if not isinstance(entry, dict):
                    continue
                bucket = merged.setdefault(
                    name, {"calls": 0, "timed": 0, "seconds": 0.0}
                )
                bucket["calls"] += entry.get("calls", 0)
                bucket["timed"] += entry.get("timed", 0)
                bucket["seconds"] += entry.get("seconds", 0.0)
    if not merged:  # bare-engine trace: fall back to verify spans
        for record in events:
            if record.get("ev") == "span" and record.get("name") == "verify":
                source = record.get("phases")
                if isinstance(source, dict):
                    for name, entry in source.items():
                        if not isinstance(entry, dict):
                            continue
                        bucket = merged.setdefault(
                            name, {"calls": 0, "timed": 0, "seconds": 0.0}
                        )
                        bucket["calls"] += entry.get("calls", 0)
                        bucket["timed"] += entry.get("timed", 0)
                        bucket["seconds"] += entry.get("seconds", 0.0)
    estimate = PhaseTimers.estimate(merged)
    samples: list[list[int]] = []
    weights: list[float] = []
    ordered = [name for name in PHASE_NAMES if name in estimate]
    ordered += sorted(name for name in estimate if name not in PHASE_NAMES)
    for name in ordered:
        seconds = estimate[name]
        if seconds <= 0:
            continue
        samples.append([frame_of(f"phase: {name}")])
        weights.append(round(seconds, 6))
    profiles.append(
        {
            "type": "sampled",
            "name": "phases (estimated seconds)",
            "unit": "seconds",
            "startValue": 0,
            "endValue": round(sum(weights), 6),
            "samples": samples,
            "weights": weights,
        }
    )

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": "repro trace",
        "exporter": "repro",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def export_trace(events: list[dict], fmt: str, out: str | Path) -> None:
    """Write the export named by ``fmt`` (``chrome`` | ``speedscope``)."""
    if fmt == "chrome":
        document = to_chrome(events)
    elif fmt == "speedscope":
        document = to_speedscope(events)
    else:
        raise ValueError(f"unknown export format {fmt!r}")
    Path(out).write_text(json.dumps(document, sort_keys=True) + "\n")
