"""A dependency-free structured tracer: spans and events to JSONL.

The tracer is process-global and off by default; when off, every
instrumentation site reduces to one attribute check, so the hot paths
pay nothing (the acceptance budget is <3% of wall time *with tracing
on*; see docs/observability.md).

Record schema — one JSON object per line, keys sorted:

* every record has ``"ev"`` (the event name) and ``"t"`` (seconds since
  :func:`start`, monotonic clock, 6 decimal places);
* span records (``"ev": "span"``) additionally carry ``"name"`` and
  ``"dur"`` (seconds), plus whatever fields the instrumentation site
  attached — spans are written once, at exit, even when the body raised
  (the record then carries ``"error"``);
* all other fields are site-specific but must be JSON-serializable and
  **deterministic**: given a deterministic verification run, the trace
  minus its timing fields (``t``/``dur``/``*seconds*``) is byte-stable
  across processes and PYTHONHASHSEED values (pinned by a subprocess
  test in ``tests/test_obs.py``).

Besides the JSONL sink, callers can subscribe in-process listeners
(:func:`add_listener`) that receive every record dict as it is emitted —
the ``--progress`` heartbeat is one.  The tracer records the PID that
enabled it and goes silent in forked children: worker processes of the
service pool must not interleave writes into the parent's trace file
(the pool re-emits per-job events parent-side instead).
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, IO, Iterator

Listener = Callable[[dict], None]

#: Serializes :func:`_emit`: the km_workers>1 scout emits ``km_progress``
#: (and summary/explore spans) from worker threads, and interleaved
#: ``sink.write`` calls would shear JSONL lines mid-record.  Uncontended
#: acquisition costs nanoseconds against a JSON dump + write, so the
#: sequential path's <3% tracing budget is unaffected
#: (benchmarks/trace_overhead.py re-verified after the audit).
_EMIT_LOCK = threading.Lock()


class _TraceState:
    __slots__ = ("sink", "owns_sink", "listeners", "t0", "pid", "active")

    def __init__(self) -> None:
        self.sink: IO[str] | None = None
        self.owns_sink = False
        self.listeners: list[Listener] = []
        self.t0 = 0.0
        self.pid = 0
        self.active = False


_STATE = _TraceState()


def enabled() -> bool:
    """True when a trace is active *in this process* (fork-safe)."""
    return _STATE.active and _STATE.pid == os.getpid()


def start(sink: str | os.PathLike | IO[str] | None = None) -> None:
    """Begin a process-global trace.

    ``sink`` is a JSONL file path (opened for writing), an open text
    file-like object, or None for a listener-only trace (``--progress``
    without ``--trace``).  Starting while a trace is active restarts it.
    """
    stop()
    if sink is None:
        _STATE.sink = None
        _STATE.owns_sink = False
    elif hasattr(sink, "write"):
        _STATE.sink = sink  # type: ignore[assignment]
        _STATE.owns_sink = False
    else:
        _STATE.sink = open(sink, "w")
        _STATE.owns_sink = True
    _STATE.t0 = perf_counter()
    _STATE.pid = os.getpid()
    _STATE.active = True


def stop() -> None:
    """End the trace; closes the sink if :func:`start` opened it.
    Listeners registered with :func:`add_listener` stay registered."""
    if _STATE.sink is not None and _STATE.owns_sink:
        try:
            _STATE.sink.close()
        except OSError:  # pragma: no cover - defensive
            pass
    _STATE.sink = None
    _STATE.owns_sink = False
    _STATE.active = False


def add_listener(listener: Listener) -> None:
    if listener not in _STATE.listeners:
        _STATE.listeners.append(listener)


def remove_listener(listener: Listener) -> None:
    if listener in _STATE.listeners:
        _STATE.listeners.remove(listener)


def _emit(record: dict) -> None:
    with _EMIT_LOCK:
        if _STATE.sink is not None:
            _STATE.sink.write(
                json.dumps(record, sort_keys=True, default=str) + "\n"
            )
        for listener in _STATE.listeners:
            try:
                listener(record)
            except Exception:  # pragma: no cover — a listener must never
                pass  # poison the traced computation


def event(name: str, /, **fields: Any) -> None:
    """Emit one instant event (no-op unless the trace is active)."""
    if not enabled():
        return
    record = {"ev": name, "t": round(perf_counter() - _STATE.t0, 6)}
    record.update(fields)
    _emit(record)


@contextmanager
def span(name: str, /, **fields: Any) -> Iterator[dict]:
    """Trace a timed span; written at exit (exceptions included).

    Yields a mutable dict the body can fill with result fields::

        with trace.span("verify", property=prop.name) as extra:
            ...
            extra["km_nodes"] = stats.km_nodes
    """
    extra: dict[str, Any] = {}
    if not enabled():
        yield extra
        return
    started = perf_counter()
    try:
        yield extra
    except BaseException as exc:
        extra.setdefault("error", type(exc).__name__)
        raise
    finally:
        finished = perf_counter()
        record = {
            "ev": "span",
            "name": name,
            "t": round(started - _STATE.t0, 6),
            "dur": round(finished - started, 6),
        }
        record.update(fields)
        record.update(extra)
        _emit(record)
