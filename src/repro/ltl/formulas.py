"""LTL formula ASTs, negation normal form, and reference semantics.

Propositions wrap arbitrary hashable payloads; HLTL-FO instantiates them
with FO conditions, service references, and child-task formulas.

The reference evaluators here (:func:`holds_finite` over finite words,
:func:`holds_infinite_lasso` over ultimately-periodic words) implement the
textbook semantics directly; tests use them to cross-check the automaton
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable, Mapping, Sequence

Payload = Hashable
Letter = Mapping[Payload, bool]


class Formula:
    """Base class; immutable and hashable."""

    def __and__(self, other: "Formula") -> "Formula":
        return AndF(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return OrF(self, other)

    def __invert__(self) -> "Formula":
        return NotF(self)

    def implies(self, other: "Formula") -> "Formula":
        return OrF(NotF(self), other)


@dataclass(frozen=True)
class TrueF(Formula):
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊤"


@dataclass(frozen=True)
class FalseF(Formula):
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊥"


@dataclass(frozen=True)
class Prop(Formula):
    payload: Payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"p[{self.payload!r}]"


@dataclass(frozen=True)
class NotF(Formula):
    body: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"¬{self.body!r}"


class _Binary(Formula):
    symbol = "?"

    def __init__(self, *parts: Formula):
        if len(parts) < 1:
            raise ValueError("connective needs at least one operand")
        self.parts = tuple(parts)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.parts == other.parts  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + f" {self.symbol} ".join(repr(p) for p in self.parts) + ")"


class AndF(_Binary):
    symbol = "∧"


class OrF(_Binary):
    symbol = "∨"


@dataclass(frozen=True)
class Next(Formula):
    body: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"X {self.body!r}"


@dataclass(frozen=True)
class Until(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} U {self.right!r})"


@dataclass(frozen=True)
class Release(Formula):
    left: Formula
    right: Formula

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} R {self.right!r})"


def Eventually(body: Formula) -> Formula:
    """F φ ≡ true U φ."""
    return Until(TrueF(), body)


def Always(body: Formula) -> Formula:
    """G φ ≡ false R φ."""
    return Release(FalseF(), body)


# ----------------------------------------------------------------------
# negation normal form
# ----------------------------------------------------------------------
def nnf(formula: Formula, negated: bool = False) -> Formula:
    """Push negations to the propositions (X/U/R dualities)."""
    if isinstance(formula, TrueF):
        return FalseF() if negated else formula
    if isinstance(formula, FalseF):
        return TrueF() if negated else formula
    if isinstance(formula, Prop):
        return NotF(formula) if negated else formula
    if isinstance(formula, NotF):
        return nnf(formula.body, not negated)
    if isinstance(formula, AndF):
        parts = tuple(nnf(p, negated) for p in formula.parts)
        return OrF(*parts) if negated else AndF(*parts)
    if isinstance(formula, OrF):
        parts = tuple(nnf(p, negated) for p in formula.parts)
        return AndF(*parts) if negated else OrF(*parts)
    if isinstance(formula, Next):
        return Next(nnf(formula.body, negated))
    if isinstance(formula, Until):
        left, right = nnf(formula.left, negated), nnf(formula.right, negated)
        return Release(left, right) if negated else Until(left, right)
    if isinstance(formula, Release):
        left, right = nnf(formula.left, negated), nnf(formula.right, negated)
        return Until(left, right) if negated else Release(left, right)
    raise TypeError(f"not an LTL formula: {formula!r}")


def _letter_value(letter: Letter, payload: Payload) -> bool:
    return bool(letter.get(payload, False))


# ----------------------------------------------------------------------
# reference semantics
# ----------------------------------------------------------------------
def holds_finite(formula: Formula, word: Sequence[Letter], position: int = 0) -> bool:
    """Finite-trace semantics of Appendix B.2 (strong next).

    The word must be non-empty; ``position`` must be a valid index.
    """
    if not word:
        raise ValueError("finite semantics is defined on non-empty words")
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Prop):
        return _letter_value(word[position], formula.payload)
    if isinstance(formula, NotF):
        return not holds_finite(formula.body, word, position)
    if isinstance(formula, AndF):
        return all(holds_finite(p, word, position) for p in formula.parts)
    if isinstance(formula, OrF):
        return any(holds_finite(p, word, position) for p in formula.parts)
    if isinstance(formula, Next):
        return position + 1 < len(word) and holds_finite(formula.body, word, position + 1)
    if isinstance(formula, Until):
        for k in range(position, len(word)):
            if holds_finite(formula.right, word, k):
                return True
            if not holds_finite(formula.left, word, k):
                return False
        return False
    if isinstance(formula, Release):
        # a R b ≡ ¬(¬a U ¬b)
        return not holds_finite(
            Until(nnf(formula.left, True), nnf(formula.right, True)), word, position
        )
    raise TypeError(f"not an LTL formula: {formula!r}")


def holds_infinite_lasso(
    formula: Formula, prefix: Sequence[Letter], loop: Sequence[Letter]
) -> bool:
    """Standard ω-semantics on the ultimately periodic word prefix·loop^ω.

    Evaluated by unrolling: positions up to ``len(prefix) + 2·len(loop)·|φ|``
    determine satisfaction for any formula over a lasso word (each temporal
    subformula's value is periodic with the loop after the prefix), so we
    memoize over (formula, position-class).
    """
    if not loop:
        raise ValueError("lasso words need a non-empty loop")
    plen, llen = len(prefix), len(loop)

    def letter(position: int) -> Letter:
        if position < plen:
            return prefix[position]
        return loop[(position - plen) % llen]

    def canon(position: int) -> int:
        if position < plen:
            return position
        return plen + (position - plen) % llen

    @lru_cache(maxsize=None)
    def sat(f: Formula, pos: int) -> bool:
        # pos is always canonical here
        if isinstance(f, TrueF):
            return True
        if isinstance(f, FalseF):
            return False
        if isinstance(f, Prop):
            return _letter_value(letter(pos), f.payload)
        if isinstance(f, NotF):
            return not sat(f.body, pos)
        if isinstance(f, AndF):
            return all(sat(p, pos) for p in f.parts)
        if isinstance(f, OrF):
            return any(sat(p, pos) for p in f.parts)
        if isinstance(f, Next):
            return sat(f.body, canon(pos + 1))
        if isinstance(f, (Until, Release)):
            # all positions reachable from pos have canonical index < plen+llen;
            # check over one full sweep of prefix + two loop unrollings
            horizon = plen + 2 * llen
            if isinstance(f, Until):
                for k in range(pos, pos + horizon):
                    ck = canon(k)
                    if sat(f.right, ck):
                        return True
                    if not sat(f.left, ck):
                        return False
                return False
            # Release: b holds until (and including when) a holds; or b forever
            for k in range(pos, pos + horizon):
                ck = canon(k)
                if not sat(f.right, ck):
                    return False
                if sat(f.left, ck):
                    return True
            return True
        raise TypeError(f"not an LTL formula: {f!r}")

    return sat(formula, 0)


def propositions(formula: Formula) -> frozenset[Payload]:
    """All proposition payloads occurring in the formula."""
    if isinstance(formula, Prop):
        return frozenset({formula.payload})
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, NotF):
        return propositions(formula.body)
    if isinstance(formula, (AndF, OrF)):
        return frozenset().union(*(propositions(p) for p in formula.parts))
    if isinstance(formula, Next):
        return propositions(formula.body)
    if isinstance(formula, (Until, Release)):
        return propositions(formula.left) | propositions(formula.right)
    raise TypeError(f"not an LTL formula: {formula!r}")
