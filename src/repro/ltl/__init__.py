"""Propositional LTL over opaque propositions (Section 3, Appendix B.2).

Formulas are evaluated both on infinite words (standard semantics) and on
finite words (the finite-trace semantics of Appendix B.2, strong next).
``repro.ltl.automaton`` builds one automaton per formula carrying *both*
acceptance conditions: Büchi acceptance for infinite runs and the final
states ``Q_fin`` for finite runs, exactly as the paper's construction
requires.
"""

from repro.ltl.formulas import (
    Always,
    AndF,
    Eventually,
    FalseF,
    Formula,
    Next,
    NotF,
    OrF,
    Prop,
    Release,
    TrueF,
    Until,
    holds_finite,
    holds_infinite_lasso,
    nnf,
)
from repro.ltl.automaton import Automaton, Transition, build_automaton

__all__ = [
    "Always",
    "AndF",
    "Eventually",
    "FalseF",
    "Formula",
    "Next",
    "NotF",
    "OrF",
    "Prop",
    "Release",
    "TrueF",
    "Until",
    "holds_finite",
    "holds_infinite_lasso",
    "nnf",
    "Automaton",
    "Transition",
    "build_automaton",
]
