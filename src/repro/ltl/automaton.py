"""LTL → automaton construction (tableau expansion, [53, 49] style).

One automaton carries both acceptance conditions the paper needs
(Section 3): Büchi acceptance for infinite runs, and the subset ``Q_fin``
of states accepting finite words.

States are sets of NNF obligations paired with a degeneralization counter
over the Until subformulas.  Transitions are labeled *symbolically*: each
carries the set of literals (payload, polarity) that the current letter
must satisfy — the verifier checks those literals against symbolic
instances instead of enumerating the exponential alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.fuzz.coverage import COVERAGE
from repro.ltl.formulas import (
    AndF,
    FalseF,
    Formula,
    Letter,
    Next,
    NotF,
    OrF,
    Payload,
    Prop,
    Release,
    TrueF,
    Until,
    nnf,
)

Literals = frozenset[tuple[Payload, bool]]
Obligations = frozenset[Formula]


@dataclass(frozen=True)
class _RawTransition:
    literals: Literals
    target: Obligations
    deferred: frozenset[Until]


def _expand(obligations: Obligations) -> list[_RawTransition]:
    """Tableau expansion of a state: all one-step transition templates."""
    results: dict[tuple[Literals, Obligations], set[Until]] = {}

    def go(
        pending: list[Formula],
        literals: dict[Payload, bool],
        nexts: set[Formula],
        deferred: set[Until],
        processed: set[Formula],
    ) -> None:
        while pending:
            formula = pending.pop()
            if formula in processed:
                continue
            processed.add(formula)
            if isinstance(formula, TrueF):
                continue
            if isinstance(formula, FalseF):
                COVERAGE.hit("ltl:expand:contradiction")
                return
            if isinstance(formula, Prop):
                if literals.get(formula.payload, True) is False:
                    COVERAGE.hit("ltl:expand:contradiction")
                    return
                literals[formula.payload] = True
                continue
            if isinstance(formula, NotF):
                assert isinstance(formula.body, Prop), "NNF required"
                payload = formula.body.payload
                if literals.get(payload, False) is True:
                    COVERAGE.hit("ltl:expand:contradiction")
                    return
                literals[payload] = False
                continue
            if isinstance(formula, AndF):
                COVERAGE.hit("ltl:expand:and")
                pending.extend(formula.parts)
                continue
            if isinstance(formula, OrF):
                COVERAGE.hit("ltl:expand:or")
                for part in formula.parts:
                    go(
                        pending + [part],
                        dict(literals),
                        set(nexts),
                        set(deferred),
                        set(processed),
                    )
                return
            if isinstance(formula, Next):
                COVERAGE.hit("ltl:expand:next")
                nexts.add(formula.body)
                continue
            if isinstance(formula, Until):
                COVERAGE.hit("ltl:expand:until")
                # a U b  ≡  b ∨ (a ∧ X(a U b))
                go(
                    pending + [formula.right],
                    dict(literals),
                    set(nexts),
                    set(deferred),
                    set(processed),
                )
                go(
                    pending + [formula.left],
                    dict(literals),
                    set(nexts) | {formula},
                    set(deferred) | {formula},
                    set(processed),
                )
                return
            if isinstance(formula, Release):
                COVERAGE.hit("ltl:expand:release")
                # a R b  ≡  b ∧ (a ∨ X(a R b))
                go(
                    pending + [formula.left, formula.right],
                    dict(literals),
                    set(nexts),
                    set(deferred),
                    set(processed),
                )
                go(
                    pending + [formula.right],
                    dict(literals),
                    set(nexts) | {formula},
                    set(deferred),
                    set(processed),
                )
                return
            raise TypeError(f"unexpected formula {formula!r}")
        key = (
            frozenset(literals.items()),
            frozenset(nexts),
        )
        if key in results:
            results[key] &= deferred  # keep the weakest deferral info
        else:
            results[key] = set(deferred)

    # Iterate the obligation set in a canonical order: frozenset
    # iteration follows the process hash seed, and the expansion order
    # decides both the tableau's dict insertion order and, downstream,
    # the verifier's Karp–Miller exploration order — which must be
    # reproducible run-over-run (witnesses and node counts are recorded
    # in suite reports and benchmark baselines).
    go(sorted(obligations, key=repr), {}, set(), set(), set())
    raw = [
        _RawTransition(literals, target, frozenset(deferred))
        for (literals, target), deferred in results.items()
    ]
    raw.sort(key=_transition_sort_key)
    return raw


def _transition_sort_key(transition: _RawTransition) -> tuple:
    """Canonical order for expansion results, independent of set-iteration
    order (``repr`` of a frozenset itself follows the hash seed, so the
    members are rendered and sorted individually)."""
    return (
        tuple(sorted(repr(item) for item in transition.literals)),
        tuple(sorted(repr(item) for item in transition.target)),
    )


def _epsilon_true(formula: Formula) -> bool:
    """Truth of an NNF formula on the *empty* suffix (past the last letter):
    strong next and until are false, release is true, literals are false."""
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, (FalseF, Prop, NotF, Next, Until)):
        return False
    if isinstance(formula, AndF):
        return all(_epsilon_true(p) for p in formula.parts)
    if isinstance(formula, OrF):
        return any(_epsilon_true(p) for p in formula.parts)
    if isinstance(formula, Release):
        return True
    raise TypeError(f"unexpected formula {formula!r}")


State = tuple[Obligations, int]


@dataclass(frozen=True)
class Transition:
    """A symbolic transition: take it when the letter satisfies ``literals``."""

    source: State
    literals: Literals
    target: State

    def enabled_by(self, letter: Letter) -> bool:
        return all(bool(letter.get(p, False)) is v for p, v in self.literals)


class Automaton:
    """The two-acceptance automaton of Section 3.

    * infinite run accepted ⟺ it visits ``buchi_accepting`` infinitely often;
    * finite word accepted ⟺ after consuming it the automaton can be in a
      state of ``finite_accepting`` (``Q_fin``).
    """

    def __init__(
        self,
        initial: frozenset[State],
        transitions: Mapping[State, tuple[Transition, ...]],
        buchi_accepting: frozenset[State],
        finite_accepting: frozenset[State],
    ):
        self.initial = initial
        self.transitions = dict(transitions)
        self.buchi_accepting = buchi_accepting
        self.finite_accepting = finite_accepting

    @property
    def states(self) -> frozenset[State]:
        return frozenset(self.transitions.keys())

    def successors(self, state: State) -> tuple[Transition, ...]:
        return self.transitions.get(state, ())

    def step(self, states: Iterable[State], letter: Letter) -> frozenset[State]:
        nxt: set[State] = set()
        for state in states:
            for transition in self.successors(state):
                if transition.enabled_by(letter):
                    nxt.add(transition.target)
        return frozenset(nxt)

    # ------------------------------------------------------------------
    # explicit-word acceptance (reference implementations for testing)
    # ------------------------------------------------------------------
    def accepts_finite(self, word: Sequence[Letter]) -> bool:
        current = self.initial
        for letter in word:
            current = self.step(current, letter)
            if not current:
                return False
        return bool(current & self.finite_accepting)

    def accepts_lasso(self, prefix: Sequence[Letter], loop: Sequence[Letter]) -> bool:
        """Accept prefix·loop^ω — product search for an accepting cycle."""
        if not loop:
            raise ValueError("lasso words need a non-empty loop")
        start: set[tuple[State, int]] = set()
        current = self.initial
        for letter in prefix:
            current = self.step(current, letter)
        for state in current:
            start.add((state, 0))
        # graph over (automaton state, loop position)
        edges: dict[tuple[State, int], set[tuple[State, int]]] = {}
        stack = list(start)
        seen = set(start)
        while stack:
            node = stack.pop()
            state, position = node
            letter = loop[position]
            succs = {
                (t.target, (position + 1) % len(loop))
                for t in self.successors(state)
                if t.enabled_by(letter)
            }
            edges[node] = succs
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        # accepting cycle through a Büchi state reachable from start
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(seen)
        for node, succs in edges.items():
            for succ in succs:
                graph.add_edge(node, succ)
        for component in nx.strongly_connected_components(graph):
            has_cycle = len(component) > 1 or any(
                graph.has_edge(n, n) for n in component
            )
            if has_cycle and any(state in self.buchi_accepting for state, _ in component):
                return True
        return False


def build_automaton(formula: Formula) -> Automaton:
    """Construct the automaton for ``formula`` (converted to NNF)."""
    normal = nnf(formula)
    untils = tuple(sorted(_until_subformulas(normal), key=repr))
    k = len(untils)

    initial_obligations: Obligations = frozenset({normal})
    transitions: dict[State, list[Transition]] = {}
    expansion_cache: dict[Obligations, list[_RawTransition]] = {}

    def expansion(obligations: Obligations) -> list[_RawTransition]:
        if obligations not in expansion_cache:
            expansion_cache[obligations] = _expand(obligations)
        return expansion_cache[obligations]

    def advance(level: int, deferred: frozenset[Until]) -> int:
        position = 0 if level == k else level
        while position < k and untils[position] not in deferred:
            position += 1
        return position

    initial_states = frozenset({(initial_obligations, 0)})
    pending: list[State] = list(initial_states)
    visited: set[State] = set(pending)
    while pending:
        state = pending.pop()
        obligations, level = state
        outgoing: list[Transition] = []
        for raw in expansion(obligations):
            next_level = advance(level, raw.deferred)
            target = (raw.target, next_level)
            outgoing.append(Transition(state, raw.literals, target))
            if target not in visited:
                visited.add(target)
                pending.append(target)
        transitions[state] = outgoing

    buchi = frozenset(s for s in visited if s[1] == k) if k else frozenset(visited)
    finite = frozenset(
        s for s in visited if all(_epsilon_true(f) for f in s[0])
    )
    return Automaton(
        initial=initial_states,
        transitions={s: tuple(ts) for s, ts in transitions.items()},
        buchi_accepting=buchi,
        finite_accepting=finite,
    )


def _until_subformulas(formula: Formula) -> set[Until]:
    if isinstance(formula, Until):
        return {formula} | _until_subformulas(formula.left) | _until_subformulas(formula.right)
    if isinstance(formula, Release):
        return _until_subformulas(formula.left) | _until_subformulas(formula.right)
    if isinstance(formula, (AndF, OrF)):
        out: set[Until] = set()
        for part in formula.parts:
            out |= _until_subformulas(part)
        return out
    if isinstance(formula, (Next, NotF)):
        body = formula.body
        return _until_subformulas(body)
    return set()
