"""Compiled properties: the Φ_T sets and the automata B(T, β) (Section 3).

For each task T, ``Φ_T`` is the set of subformulas ``[ψ]_T`` occurring in
the property.  For a truth assignment β over Φ_T, ``B(T, β)`` is the
automaton of ``⋀_{β(ψ)=1} ψ ∧ ⋀_{β(ψ)=0} ¬ψ``; the root task uses the
automaton of the (negated) property itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import SpecificationError
from repro.has.system import HAS
from repro.hltl.formulas import ChildProp, CondProp, HLTLProperty, HLTLSpec
from repro.ltl.automaton import Automaton, build_automaton
from repro.ltl.formulas import AndF, Formula, NotF, TrueF, propositions

BetaKey = frozenset  # frozenset[(HLTLSpec, bool)]


def beta_key(assignment: Mapping[HLTLSpec, bool]) -> BetaKey:
    return frozenset(assignment.items())


class CompiledProperty:
    """Φ_T sets, automata cache, and the negated root automaton."""

    def __init__(self, has: HAS, prop: HLTLProperty):
        if prop.global_variables:
            raise SpecificationError(
                "verification requires properties without global variables — "
                "apply repro.transform.eliminate_global_variables first (Lemma 30)"
            )
        self.has = has
        self.prop = prop
        self.phi: dict[str, tuple[HLTLSpec, ...]] = {t.name: () for t in has.tasks()}
        self._collect(prop.root)
        self._automata: dict[tuple[str, BetaKey], Automaton] = {}
        self._root_negated: Automaton | None = None

    def _collect(self, spec: HLTLSpec) -> None:
        seen: dict[str, set[HLTLSpec]] = {name: set() for name in self.phi}

        def walk(current: HLTLSpec) -> None:
            for payload in propositions(current.formula):
                if isinstance(payload, ChildProp):
                    inner = payload.spec
                    if inner not in seen[inner.task]:
                        seen[inner.task].add(inner)
                        walk(inner)

        walk(spec)
        for name, specs in seen.items():
            self.phi[name] = tuple(sorted(specs, key=repr))

    # ------------------------------------------------------------------
    def betas(self, task_name: str) -> Iterator[dict[HLTLSpec, bool]]:
        """All truth assignments over Φ_T (a single empty one when Φ_T=∅)."""
        specs = self.phi.get(task_name, ())
        for bits in itertools.product((True, False), repeat=len(specs)):
            yield dict(zip(specs, bits))

    def automaton(self, task_name: str, beta: Mapping[HLTLSpec, bool]) -> Automaton:
        key = (task_name, beta_key(beta))
        if key not in self._automata:
            parts: list[Formula] = []
            for spec, value in sorted(beta.items(), key=lambda kv: repr(kv[0])):
                parts.append(spec.formula if value else NotF(spec.formula))
            formula: Formula = AndF(*parts) if parts else TrueF()
            self._automata[key] = build_automaton(formula)
        return self._automata[key]

    def root_negated_automaton(self) -> Automaton:
        """B(¬ξ) for the root: Γ ⊨ [ξ]_T1 iff [¬ξ]_T1 is unsatisfiable."""
        if self._root_negated is None:
            self._root_negated = build_automaton(NotF(self.prop.root.formula))
        return self._root_negated

    def child_specs_of(self, task_name: str) -> tuple[HLTLSpec, ...]:
        return self.phi.get(task_name, ())
