"""The verification engine: bottom-up ``R_T`` computation and the
top-level HLTL-FO model-checking procedure (Section 4.2, Lemma 21).

``Γ ⊨ ∀ȳ[ξ]_{T1}`` holds iff no symbolic tree of runs satisfies
``[¬ξ]_{T1}``; the engine searches for one with the negated root
automaton, summarizing child tasks by their memoized input/output/β
relations (Lemma 21's returning, lasso, and blocking paths).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import BudgetExceeded, SpecificationError, VerificationError
from repro.fuzz.coverage import COVERAGE
from repro.has.restrictions import validate_has
from repro.obs import trace
from repro.obs.attribution import ATTRIBUTION
from repro.perf.counters import COUNTERS
from repro.perf.phases import PHASES, PhaseTimers
from repro.has.system import HAS
from repro.has.task import Task
from repro.hltl.formulas import (
    ChildProp,
    CondProp,
    HLTLProperty,
    SetAtom,
    validate_property,
)
from repro.ltl.formulas import propositions
from repro.symbolic.store import ConstraintStore, Inconsistent
from repro.symbolic.apply import apply_condition
from repro.vass.karp_miller import KMGraph, build_km_graph, rooted_witness_path
from repro.vass.repeated import accepting_cycle, cycle_path
from repro.verifier.config import VerifierConfig
from repro.verifier.result import (
    SymbolicTrace,
    VerificationResult,
    VerificationStats,
    WitnessStep,
)
from repro.verifier.spec import BetaKey, CompiledProperty, beta_key
from repro.verifier.task_vass import StepTag, TaskVASS


@dataclass
class TaskSummary:
    """The slice of ``R_T`` for one input type and one β (Lemma 21)."""

    outputs: dict[tuple, ConstraintStore] = field(default_factory=dict)
    nonreturning: bool = False
    km_nodes: int = 0


class Verifier:
    """Model checker for one HAS; reusable across properties."""

    def __init__(self, has: HAS, config: VerifierConfig | None = None):
        self.has = has
        self.config = config or VerifierConfig()
        validate_has(has)
        self._summaries: dict[tuple, TaskSummary] = {}
        self._input_stores: dict[tuple[str, tuple], ConstraintStore] = {}
        self._child_input_memo: dict[tuple, tuple[ConstraintStore, tuple]] = {}
        self.deadline: float | None = None
        self.compiled: CompiledProperty | None = None
        self.stats = VerificationStats()

    # ------------------------------------------------------------------
    # budgeted search
    # ------------------------------------------------------------------
    def _explore(self, vass: TaskVASS, starts, what: str) -> KMGraph:
        """Karp–Miller exploration with the configured node budget; a
        single choke point for the budget-exhausted diagnostics (and for
        the ``expand`` phase timer and exploration trace spans)."""
        with trace.span("explore", what=what) as extra:
            # snapshot only when a trace wants the delta: the attribution
            # registry itself is always on, but snapshot/diff per
            # exploration is pure reporting cost
            attr_base = ATTRIBUTION.snapshot() if trace.enabled() else None
            token = PHASES.begin("expand")
            try:
                graph = build_km_graph(
                    vass,
                    starts,
                    budget=self.config.km_budget,
                    order=self.config.km_order,
                    progress_label=what,
                )
            finally:
                PHASES.end("expand", token)
                # don't let this exploration's last construct soak up
                # post-exploration fm/canon time (witness pipeline, or a
                # parent VASS that hasn't re-entered a branch yet)
                ATTRIBUTION.clear_context()
            extra["nodes"] = len(graph.nodes)
            extra["budget_exhausted"] = graph.budget_exhausted
            if attr_base is not None:
                extra["attribution"] = ATTRIBUTION.since(attr_base)
        if graph.budget_exhausted:
            COVERAGE.hit("engine:budget:boxed")
            # don't count the truncated graph in stats: the exception
            # already carries its node count (states_explored), and
            # counting both would double-report throughput
            raise BudgetExceeded(
                f"{what} exhausted the KM budget", len(graph.nodes)
            )
        self.stats.km_nodes += len(graph.nodes)
        return graph

    # ------------------------------------------------------------------
    # child I/O plumbing
    # ------------------------------------------------------------------
    def make_child_input(
        self, parent_store: ConstraintStore, child: Task
    ) -> tuple[ConstraintStore, tuple]:
        """The child's input isomorphism type: the parent's facts about the
        passed variables, rebased onto the child's input variables.

        Memoized on (child, parent canonical key): the extraction is a
        pure function of the parent store's content, and opening
        transitions re-derive the same input type from thousands of
        isomorphic parent branches.  The memoized representative is
        exactly the store the first (uncached) call would have built, so
        downstream summary keys and exploration are unchanged."""
        memo_key = (child.name, parent_store.canonical_key())
        cached = self._child_input_memo.get(memo_key)
        if cached is not None:
            COUNTERS.child_input_hits += 1
            return cached
        COUNTERS.child_input_misses += 1
        passed = list(child.opening.input_map.values())
        restricted = parent_store.restrict(passed)
        child_store = ConstraintStore(self.has.database)
        child_store.absorb(
            restricted,
            {
                parent_var: child_var
                for child_var, parent_var in child.opening.input_map.items()
            },
        )
        key = child_store.canonical_key()
        self._input_stores[(child.name, key)] = child_store
        self._child_input_memo[memo_key] = (child_store, key)
        return child_store, key

    def summary(
        self, task_name: str, input_store: ConstraintStore, beta: Mapping
    ) -> TaskSummary:
        """Memoized ``R_T`` slice for (input type, β) — Lemma 21.

        The memo key ``(task, input canonical key, β)`` determines the
        child automaton ``B(T, β)`` exactly (β assigns truth values to
        the very specs the conjunction is built from), so summaries are
        shared across every opening transition, every KM branch, and —
        because the memo outlives one ``verify()`` call — across
        *different properties* checked on the same :class:`Verifier`
        whenever they agree on a task's child specs.  Hits are counted in
        ``stats.summary_hits`` and the ``summary`` perf counter."""
        key = (task_name, input_store.canonical_key(), beta_key(beta))
        cached = self._summaries.get(key)
        if cached is not None:
            COUNTERS.summary_hits += 1
            self.stats.summary_hits += 1
            return cached
        COUNTERS.summary_misses += 1
        if len(self._summaries) >= self.config.max_summaries:
            raise VerificationError("summary memo limit exceeded")
        assert self.compiled is not None
        task = self.has.task(task_name)
        automaton = self.compiled.automaton(task_name, beta)
        vass = TaskVASS(self, task, automaton, is_root=False, config=self.config)
        starts = list(vass.initial_states(input_store))
        summary = TaskSummary()
        # placeholder first: defends against (impossible) recursive loops
        self._summaries[key] = summary
        with trace.span("summary", task=task_name) as extra:
            try:
                graph = self._explore(vass, starts, f"summary of {task_name}")
            except BaseException:
                # never memoize a truncated summary: the memo outlives this
                # verify() call, and an empty placeholder left behind by a
                # budget/deadline abort would silently drop the child's
                # behaviors from a later run
                self._summaries.pop(key, None)
                raise
            COVERAGE.hit("engine:summary:computed")
            for node in graph.nodes:
                if vass.is_returning_accepting(node.state):
                    COVERAGE.hit("engine:summary:output")
                    out = vass.output_of(node.state)
                    out_key = out.canonical_key()
                    if len(summary.outputs) < self.config.max_outputs_per_summary:
                        summary.outputs.setdefault(out_key, out)
                elif vass.is_blocking_accepting(node.state):
                    COVERAGE.hit("engine:summary:blocking")
                    summary.nonreturning = True
            if not summary.nonreturning:
                if accepting_cycle(graph, lambda n: vass.is_lasso_accepting(n.state)) is not None:
                    COVERAGE.hit("engine:summary:lasso")
                    summary.nonreturning = True
            summary.km_nodes = len(graph.nodes)
            extra["km_nodes"] = summary.km_nodes
            extra["outputs"] = len(summary.outputs)
            extra["nonreturning"] = summary.nonreturning
        self.stats.summaries += 1
        return summary

    def output_store(
        self, task_name: str, input_key: tuple, beta_items: BetaKey, out_key: tuple
    ) -> ConstraintStore:
        summary = self._summaries[(task_name, input_key, frozenset(beta_items))]
        return summary.outputs[out_key]

    # ------------------------------------------------------------------
    # top-level verification
    # ------------------------------------------------------------------
    def verify(self, prop: HLTLProperty) -> VerificationResult:
        """Check ``Γ ⊨ prop``: search for a symbolic tree satisfying ¬ξ."""
        started = time.monotonic()
        self.deadline = (
            started + self.config.time_limit_seconds
            if self.config.time_limit_seconds is not None
            else None
        )
        validate_property(prop, self.has)
        _reject_set_atoms(prop)
        self.compiled = CompiledProperty(self.has, prop)
        self.stats = VerificationStats()
        phases_baseline = PHASES.snapshot()
        attr_baseline = ATTRIBUTION.snapshot() if trace.enabled() else None
        try:
            with trace.span("verify", property=prop.name) as extra:
                result = self._verify_compiled(prop)
                extra["holds"] = result.holds
                extra["witness_kind"] = result.witness_kind
                extra["km_nodes"] = self.stats.km_nodes
                extra["summaries"] = self.stats.summaries
                phases_delta = PHASES.since(phases_baseline)
                extra["phases"] = phases_delta
                if attr_baseline is not None:
                    extra["attribution"] = ATTRIBUTION.since(attr_baseline)
        finally:
            # attribute phase time even when the budget aborted the search
            # (the pool reports partial stats for budget-exceeded jobs)
            self._record_phase_seconds(phases_baseline)
        self.stats.wall_seconds = time.monotonic() - started
        return result

    def _record_phase_seconds(self, baseline: dict) -> None:
        estimate = PhaseTimers.estimate(PHASES.since(baseline))
        self.stats.fm_seconds = estimate.get("fm", 0.0)
        self.stats.canon_seconds = estimate.get("canon", 0.0)
        self.stats.expand_seconds = estimate.get("expand", 0.0)

    def _verify_compiled(self, prop: HLTLProperty) -> VerificationResult:
        """The search proper: root exploration plus witness extraction."""
        automaton = self.compiled.root_negated_automaton()
        root = self.has.root
        vass = TaskVASS(self, root, automaton, is_root=True, config=self.config)
        starts = []
        for init_store in self._root_initial_stores():
            starts.extend(vass.initial_states(init_store))
        graph = self._explore(vass, starts, "root search")
        result = VerificationResult(
            holds=True, property_name=prop.name, stats=self.stats
        )
        # blocking counterexample
        for node in graph.nodes:
            if vass.is_blocking_accepting(node.state):
                result.holds = False
                result.witness_kind = "blocking"
                COVERAGE.hit("engine:witness:blocking")
                start, path = rooted_witness_path(node)
                result.witness = _steps_of(path)
                result.symbolic_trace = SymbolicTrace(vass, start, path)
                break
        if result.holds:
            found = accepting_cycle(graph, lambda n: vass.is_lasso_accepting(n.state))
            if found is not None:
                node, component = found
                result.holds = False
                result.witness_kind = "lasso"
                COVERAGE.hit("engine:witness:lasso")
                start, path = rooted_witness_path(node)
                cycle = cycle_path(node, component)
                result.witness = _steps_of(path) + _steps_of(cycle)
                result.loop_start = len(path)
                result.symbolic_trace = SymbolicTrace(vass, start, path, cycle)
        COVERAGE.hit(
            "engine:verdict:holds" if result.holds else "engine:verdict:violated"
        )
        return result

    def _root_initial_stores(self) -> list[ConstraintStore]:
        base = ConstraintStore(self.has.database)
        for variable in self.has.root.input_variables:
            base.node_of(variable)  # materialize the input values
        refinements = list(apply_condition(base, self.has.precondition))
        if len(refinements) > 1:
            COVERAGE.hit("engine:root:multi_start")
        return refinements


def _reject_set_atoms(prop: HLTLProperty) -> None:
    def walk(spec) -> None:
        for payload in propositions(spec.formula):
            if isinstance(payload, CondProp):
                condition = payload.condition
                from repro.logic.conditions import Exists

                while isinstance(condition, Exists):
                    condition = condition.body
                try:
                    atoms = condition.atoms()
                except Exception:
                    continue  # nested ∃ is handled natively at search time
                if any(isinstance(a, SetAtom) for a in atoms):
                    raise SpecificationError(
                        "set atoms in properties must be eliminated first "
                        "(repro.transform.eliminate_set_atoms, Lemma 30)"
                    )
            elif isinstance(payload, ChildProp):
                walk(payload.spec)

    walk(prop.root)


def _steps_of(path) -> list[WitnessStep]:
    steps: list[WitnessStep] = []
    for tag, _node in path:
        if isinstance(tag, StepTag):
            steps.append(WitnessStep(tag.task, repr(tag.service), tag.detail))
    return steps


def verify(
    has: HAS, prop: HLTLProperty, config: VerifierConfig | None = None
) -> VerificationResult:
    """One-shot convenience wrapper around :class:`Verifier`."""
    return Verifier(has, config).verify(prop)
