"""The verification engine: bottom-up ``R_T`` computation and the
top-level HLTL-FO model-checking procedure (Section 4.2, Lemma 21).

``Γ ⊨ ∀ȳ[ξ]_{T1}`` holds iff no symbolic tree of runs satisfies
``[¬ξ]_{T1}``; the engine searches for one with the negated root
automaton, summarizing child tasks by their memoized input/output/β
relations (Lemma 21's returning, lasso, and blocking paths).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import BudgetExceeded, SpecificationError
from repro.fuzz.coverage import COVERAGE
from repro.has.restrictions import validate_has
from repro.obs import trace
from repro.obs.attribution import ATTRIBUTION
from repro.perf.counters import COUNTERS
from repro.perf.phases import PHASES, PhaseTimers
from repro.has.system import HAS
from repro.has.task import Task
from repro.hltl.formulas import (
    ChildProp,
    CondProp,
    HLTLProperty,
    SetAtom,
    validate_property,
)
from repro.ltl.formulas import propositions
from repro.symbolic.store import ConstraintStore, Inconsistent
from repro.symbolic.apply import apply_condition
from repro.vass.karp_miller import (
    KMGraph,
    ScoutStats,
    build_km_graph,
    rooted_witness_path,
    scout_km_graph,
)
from repro.vass.repeated import accepting_cycle, cycle_path
from repro.verifier.config import VerifierConfig
from repro.verifier.result import (
    SymbolicTrace,
    VerificationResult,
    VerificationStats,
    WitnessStep,
)
from repro.verifier.spec import BetaKey, CompiledProperty, beta_key
from repro.verifier.task_vass import StepTag, TaskVASS


@dataclass
class TaskSummary:
    """The slice of ``R_T`` for one input type and one β (Lemma 21)."""

    outputs: dict[tuple, ConstraintStore] = field(default_factory=dict)
    nonreturning: bool = False
    km_nodes: int = 0


class Verifier:
    """Model checker for one HAS; reusable across properties."""

    def __init__(
        self,
        has: HAS,
        config: VerifierConfig | None = None,
        summary_store=None,
    ):
        self.has = has
        self.config = config or VerifierConfig()
        validate_has(has)
        #: Optional :class:`repro.service.cache.SummaryStore`: the
        #: persistent cross-job tier behind the in-memory summary memo.
        self.summary_store = summary_store
        self._summaries: dict[tuple, TaskSummary] = {}
        self._input_stores: dict[tuple[str, tuple], ConstraintStore] = {}
        self._child_input_memo: dict[tuple, tuple[ConstraintStore, tuple]] = {}
        # Per completed summary: the transitive closure of the summary
        # keys its exploration consulted (dependency order, itself last).
        # A persisted record embeds its whole closure, so installing one
        # store hit reproduces every summary — and every km_nodes /
        # summaries stat credit — the cold run would have computed.
        self._summary_closures: dict[tuple, tuple] = {}
        self._dep_frames: list[dict] = []  # dict-as-ordered-set per open summary
        self._persist_keys: dict[tuple, str] = {}
        self.deadline: float | None = None
        self.compiled: CompiledProperty | None = None
        self.stats = VerificationStats()
        #: Set on the disposable *scout* engine clone that km_workers>1
        #: shares across worker threads (see :meth:`_run_scout`).  It
        #: opts the clone's TaskVASS instances into locked interning and
        #: serializes :meth:`summary` behind an RLock — the summary
        #: machinery mutates an engine-wide frame stack
        #: (``_dep_frames``) that has no meaning interleaved.  The real
        #: engine never sets it, so the sequential path pays nothing.
        self._thread_safe = False
        self._summary_lock: threading.RLock | None = None
        #: Stats of the last km_workers>1 scout pass (observational —
        #: never part of the verdict or the serialized outcome).
        self.last_scout: ScoutStats | None = None

    # ------------------------------------------------------------------
    # budgeted search
    # ------------------------------------------------------------------
    def _explore(self, vass: TaskVASS, starts, what: str) -> KMGraph:
        """Karp–Miller exploration with the configured node budget; a
        single choke point for the budget-exhausted diagnostics (and for
        the ``expand`` phase timer and exploration trace spans)."""
        with trace.span("explore", what=what) as extra:
            # snapshot only when a trace wants the delta: the attribution
            # registry itself is always on, but snapshot/diff per
            # exploration is pure reporting cost
            attr_base = ATTRIBUTION.snapshot() if trace.enabled() else None
            token = PHASES.begin("expand")
            try:
                graph = build_km_graph(
                    vass,
                    starts,
                    budget=self.config.km_budget,
                    order=self.config.km_order,
                    progress_label=what,
                )
            finally:
                PHASES.end("expand", token)
                # don't let this exploration's last construct soak up
                # post-exploration fm/canon time (witness pipeline, or a
                # parent VASS that hasn't re-entered a branch yet)
                ATTRIBUTION.clear_context()
            extra["nodes"] = len(graph.nodes)
            extra["budget_exhausted"] = graph.budget_exhausted
            if attr_base is not None:
                extra["attribution"] = ATTRIBUTION.since(attr_base)
        if graph.budget_exhausted:
            COVERAGE.hit("engine:budget:boxed")
            # don't count the truncated graph in stats: the exception
            # already carries its node count (states_explored), and
            # counting both would double-report throughput
            raise BudgetExceeded(
                f"{what} exhausted the KM budget", len(graph.nodes)
            )
        self.stats.km_nodes += len(graph.nodes)
        return graph

    # ------------------------------------------------------------------
    # child I/O plumbing
    # ------------------------------------------------------------------
    def make_child_input(
        self, parent_store: ConstraintStore, child: Task
    ) -> tuple[ConstraintStore, tuple]:
        """The child's input isomorphism type: the parent's facts about the
        passed variables, rebased onto the child's input variables.

        Memoized on (child, parent canonical key): the extraction is a
        pure function of the parent store's content, and opening
        transitions re-derive the same input type from thousands of
        isomorphic parent branches.  The memoized representative is
        exactly the store the first (uncached) call would have built, so
        downstream summary keys and exploration are unchanged."""
        memo_key = (child.name, parent_store.canonical_key())
        cached = self._child_input_memo.get(memo_key)
        if cached is not None:
            COUNTERS.child_input_hits += 1
            return cached
        COUNTERS.child_input_misses += 1
        passed = list(child.opening.input_map.values())
        restricted = parent_store.restrict(passed)
        child_store = ConstraintStore(self.has.database)
        child_store.absorb(
            restricted,
            {
                parent_var: child_var
                for child_var, parent_var in child.opening.input_map.items()
            },
        )
        key = child_store.canonical_key()
        self._input_stores[(child.name, key)] = child_store
        if len(self._child_input_memo) < self.config.child_input_memo_limit:
            self._child_input_memo[memo_key] = (child_store, key)
        return child_store, key

    def summary(
        self, task_name: str, input_store: ConstraintStore, beta: Mapping
    ) -> TaskSummary:
        """Memoized ``R_T`` slice for (input type, β) — Lemma 21.

        The memo key ``(task, input canonical key, β)`` determines the
        child automaton ``B(T, β)`` exactly (β assigns truth values to
        the very specs the conjunction is built from), so summaries are
        shared across every opening transition, every KM branch, and —
        because the memo outlives one ``verify()`` call — across
        *different properties* checked on the same :class:`Verifier`
        whenever they agree on a task's child specs.  Hits are counted in
        ``stats.summary_hits`` and the ``summary`` perf counter.

        On a thread-safe scout clone the whole computation is serialized
        behind an RLock (recursive: child summaries call back in): the
        memo, the dependency-frame stack, and ``stats`` are engine-wide
        mutables with no consistent interleaved meaning.  Root-level KM
        expansion still interleaves across scout threads; only summary
        *computation* is single-file."""
        if self._summary_lock is not None:
            with self._summary_lock:
                return self._summary_impl(task_name, input_store, beta)
        return self._summary_impl(task_name, input_store, beta)

    def _summary_impl(
        self, task_name: str, input_store: ConstraintStore, beta: Mapping
    ) -> TaskSummary:
        key = (task_name, input_store.canonical_key(), beta_key(beta))
        cached = self._summaries.get(key)
        if cached is not None:
            COUNTERS.summary_hits += 1
            self.stats.summary_hits += 1
            self._note_summary_use(key)
            return cached
        COUNTERS.summary_misses += 1
        if len(self._summaries) >= self.config.max_summaries:
            # a budget, not an internal error: the pool maps this to the
            # graceful budget_exceeded outcome, same as the KM budget
            raise BudgetExceeded("summary memo limit exceeded")
        assert self.compiled is not None
        if self.summary_store is not None:
            loaded = self._load_persisted_summary(key)
            if loaded is not None:
                self._note_summary_use(key)
                return loaded
        task = self.has.task(task_name)
        automaton = self.compiled.automaton(task_name, beta)
        vass = TaskVASS(self, task, automaton, is_root=False, config=self.config)
        starts = list(vass.initial_states(input_store))
        summary = TaskSummary()
        # placeholder first: defends against (impossible) recursive loops
        self._summaries[key] = summary
        self._dep_frames.append({})
        with trace.span("summary", task=task_name) as extra:
            try:
                graph = self._explore(vass, starts, f"summary of {task_name}")
                COVERAGE.hit("engine:summary:computed")
                for node in graph.nodes:
                    if vass.is_returning_accepting(node.state):
                        COVERAGE.hit("engine:summary:output")
                        out = vass.output_of(node.state)
                        out_key = out.canonical_key()
                        if out_key not in summary.outputs:
                            if (
                                len(summary.outputs)
                                >= self.config.max_outputs_per_summary
                            ):
                                # never truncate silently: a dropped output
                                # type hides a child behavior from the
                                # parent and can flip the verdict
                                raise BudgetExceeded(
                                    f"summary of {task_name} exceeded "
                                    "max_outputs_per_summary"
                                )
                            summary.outputs[out_key] = out
                    elif vass.is_blocking_accepting(node.state):
                        COVERAGE.hit("engine:summary:blocking")
                        summary.nonreturning = True
                if not summary.nonreturning:
                    if accepting_cycle(graph, lambda n: vass.is_lasso_accepting(n.state)) is not None:
                        COVERAGE.hit("engine:summary:lasso")
                        summary.nonreturning = True
                summary.km_nodes = len(graph.nodes)
                extra["km_nodes"] = summary.km_nodes
                extra["outputs"] = len(summary.outputs)
                extra["nonreturning"] = summary.nonreturning
            except BaseException:
                # never memoize (or persist) a truncated summary: the memo
                # outlives this verify() call, and a partial summary left
                # behind by a budget/deadline abort would silently drop
                # the child's behaviors from a later run
                self._summaries.pop(key, None)
                self._dep_frames.pop()
                raise
        frame = self._dep_frames.pop()
        self._summary_closures[key] = (
            tuple(dep for dep in frame if dep != key) + (key,)
        )
        self._note_summary_use(key)
        self.stats.summaries += 1
        if self.summary_store is not None:
            self._persist_summary(key)
        return summary

    def _note_summary_use(self, key: tuple) -> None:
        """Record that the currently-exploring summary (if any) consulted
        ``key`` — propagating key's whole closure, so frames stay
        transitively closed."""
        if not self._dep_frames:
            return
        frame = self._dep_frames[-1]
        for dep in self._summary_closures.get(key, (key,)):
            frame.setdefault(dep, None)

    def _persistent_key(self, key: tuple) -> str:
        cached = self._persist_keys.get(key)
        if cached is None:
            # lazy import: the service layer sits above the verifier, so
            # the codec is only pulled in when a store is actually wired
            from repro.service.summaries import persistent_summary_key

            task_name, input_key, bkey = key
            cached = persistent_summary_key(
                self.has, task_name, input_key, bkey, self.config
            )
            self._persist_keys[key] = cached
        return cached

    def _load_persisted_summary(self, key: tuple) -> TaskSummary | None:
        """Install a summary (and its whole dependency closure) from the
        persistent store; returns None on any miss or malformed record."""
        from repro.service import summaries as summary_codec

        record = self.summary_store.get(self._persistent_key(key))
        decoded = (
            summary_codec.decode_record(record, self.has.database)
            if record is not None
            else None
        )
        if decoded is None or decoded[0] != key:
            COUNTERS.summary_store_misses += 1
            return None
        COUNTERS.summary_store_hits += 1
        result: TaskSummary | None = None
        for entry_key, outputs, nonreturning, km_nodes, deps in decoded[1]:
            existing = self._summaries.get(entry_key)
            if existing is None:
                if len(self._summaries) >= self.config.max_summaries:
                    raise BudgetExceeded("summary memo limit exceeded")
                existing = TaskSummary(
                    outputs=outputs, nonreturning=nonreturning, km_nodes=km_nodes
                )
                self._summaries[entry_key] = existing
                self._summary_closures[entry_key] = deps
                # credit exactly what the cold run would have counted for
                # this summary, so cold and warm totals stay identical
                self.stats.summaries += 1
                self.stats.km_nodes += km_nodes
                self.stats.summaries_reused += 1
                self.stats.km_nodes_reused += km_nodes
            if entry_key == key:
                result = existing
        return result

    def _persist_summary(self, key: tuple) -> None:
        from repro.service import summaries as summary_codec

        record = summary_codec.encode_record(
            self._summary_closures[key], self._summaries, self._summary_closures
        )
        self.summary_store.put(self._persistent_key(key), record)

    def output_store(
        self, task_name: str, input_key: tuple, beta_items: BetaKey, out_key: tuple
    ) -> ConstraintStore:
        summary = self._summaries[(task_name, input_key, frozenset(beta_items))]
        return summary.outputs[out_key]

    # ------------------------------------------------------------------
    # top-level verification
    # ------------------------------------------------------------------
    def verify(self, prop: HLTLProperty) -> VerificationResult:
        """Check ``Γ ⊨ prop``: search for a symbolic tree satisfying ¬ξ."""
        started = time.monotonic()
        self.deadline = (
            started + self.config.time_limit_seconds
            if self.config.time_limit_seconds is not None
            else None
        )
        validate_property(prop, self.has)
        _reject_set_atoms(prop)
        self.compiled = CompiledProperty(self.has, prop)
        self.stats = VerificationStats()
        phases_baseline = PHASES.snapshot()
        attr_baseline = ATTRIBUTION.snapshot() if trace.enabled() else None
        if self.config.km_workers > 1:
            # Phase A: parallel scout on a disposable clone, warming the
            # process-global content-keyed caches.  Phase B below is the
            # untouched sequential path — byte-identical to km_workers=1
            # by construction (docs/performance.md).
            self._run_scout(prop)
        try:
            with trace.span("verify", property=prop.name) as extra:
                result = self._verify_compiled(prop)
                extra["holds"] = result.holds
                extra["witness_kind"] = result.witness_kind
                extra["km_nodes"] = self.stats.km_nodes
                extra["summaries"] = self.stats.summaries
                phases_delta = PHASES.since(phases_baseline)
                extra["phases"] = phases_delta
                if attr_baseline is not None:
                    extra["attribution"] = ATTRIBUTION.since(attr_baseline)
        finally:
            # attribute phase time even when the budget aborted the search
            # (the pool reports partial stats for budget-exceeded jobs)
            self._record_phase_seconds(phases_baseline)
        self.stats.wall_seconds = time.monotonic() - started
        return result

    def _run_scout(self, prop: HLTLProperty) -> None:
        """The km_workers>1 *scout* phase: run a work-stealing parallel
        exploration of the root search on a disposable engine clone.

        The clone shares nothing id-keyed or representative-carrying
        with this engine — no summary memo, no successor memo, no
        persistent summary store (parallel discovery order picks
        isomorphic-but-not-byte-identical representative stores, and a
        leaked representative would change witness bytes).  What the
        scout *does* share, by design, are the process-global
        content-keyed caches (FM sat/projection memos, canonical-key
        caches), whose cross-run sharing is already the repo's tested
        A/B-invisible invariant — so the sequential replay in
        :meth:`_verify_compiled` runs the exact reference exploration,
        just faster where those caches hit.  A scout failure of any kind
        only means cold caches, so everything is swallowed; with a
        wall-clock limit the scout is boxed to half the remaining time
        so the replay always keeps at least half."""
        config = replace(self.config, km_workers=1)
        scout = Verifier(self.has, config, summary_store=None)
        scout._thread_safe = True
        scout._summary_lock = threading.RLock()
        if self.deadline is not None:
            now = time.monotonic()
            remaining = self.deadline - now
            if remaining <= 0:
                return
            scout.deadline = now + remaining / 2
        try:
            with trace.span("km_scout", workers=self.config.km_workers) as extra:
                scout.compiled = CompiledProperty(self.has, prop)
                automaton = scout.compiled.root_negated_automaton()
                vass = TaskVASS(
                    scout, self.has.root, automaton, is_root=True, config=config
                )
                starts = []
                for init_store in scout._root_initial_stores():
                    starts.extend(vass.initial_states(init_store))
                self.last_scout = scout_km_graph(
                    vass,
                    starts,
                    budget=config.km_budget,
                    workers=self.config.km_workers,
                    progress_label="root scout",
                )
                extra["expansions"] = self.last_scout.expansions
                extra["nodes"] = self.last_scout.nodes
                extra["steals"] = self.last_scout.steals
                extra["prunes"] = self.last_scout.prunes
                extra["errors"] = len(self.last_scout.errors)
        except Exception:
            self.last_scout = None

    def _record_phase_seconds(self, baseline: dict) -> None:
        estimate = PhaseTimers.estimate(PHASES.since(baseline))
        self.stats.fm_seconds = estimate.get("fm", 0.0)
        self.stats.canon_seconds = estimate.get("canon", 0.0)
        self.stats.expand_seconds = estimate.get("expand", 0.0)

    def _verify_compiled(self, prop: HLTLProperty) -> VerificationResult:
        """The search proper: root exploration plus witness extraction."""
        automaton = self.compiled.root_negated_automaton()
        root = self.has.root
        vass = TaskVASS(self, root, automaton, is_root=True, config=self.config)
        starts = []
        for init_store in self._root_initial_stores():
            starts.extend(vass.initial_states(init_store))
        graph = self._explore(vass, starts, "root search")
        result = VerificationResult(
            holds=True, property_name=prop.name, stats=self.stats
        )
        # blocking counterexample
        for node in graph.nodes:
            if vass.is_blocking_accepting(node.state):
                result.holds = False
                result.witness_kind = "blocking"
                COVERAGE.hit("engine:witness:blocking")
                start, path = rooted_witness_path(node)
                result.witness = _steps_of(path)
                result.symbolic_trace = SymbolicTrace(vass, start, path)
                break
        if result.holds:
            found = accepting_cycle(graph, lambda n: vass.is_lasso_accepting(n.state))
            if found is not None:
                node, component = found
                result.holds = False
                result.witness_kind = "lasso"
                COVERAGE.hit("engine:witness:lasso")
                start, path = rooted_witness_path(node)
                cycle = cycle_path(node, component)
                result.witness = _steps_of(path) + _steps_of(cycle)
                result.loop_start = len(path)
                result.symbolic_trace = SymbolicTrace(vass, start, path, cycle)
        COVERAGE.hit(
            "engine:verdict:holds" if result.holds else "engine:verdict:violated"
        )
        return result

    def _root_initial_stores(self) -> list[ConstraintStore]:
        base = ConstraintStore(self.has.database)
        for variable in self.has.root.input_variables:
            base.node_of(variable)  # materialize the input values
        refinements = list(apply_condition(base, self.has.precondition))
        if len(refinements) > 1:
            COVERAGE.hit("engine:root:multi_start")
        return refinements


def _reject_set_atoms(prop: HLTLProperty) -> None:
    def walk(spec) -> None:
        for payload in propositions(spec.formula):
            if isinstance(payload, CondProp):
                condition = payload.condition
                from repro.logic.conditions import Exists

                while isinstance(condition, Exists):
                    condition = condition.body
                try:
                    atoms = condition.atoms()
                except Exception:
                    continue  # nested ∃ is handled natively at search time
                if any(isinstance(a, SetAtom) for a in atoms):
                    raise SpecificationError(
                        "set atoms in properties must be eliminated first "
                        "(repro.transform.eliminate_set_atoms, Lemma 30)"
                    )
            elif isinstance(payload, ChildProp):
                walk(payload.spec)

    walk(prop.root)


def _steps_of(path) -> list[WitnessStep]:
    steps: list[WitnessStep] = []
    for tag, _node in path:
        if isinstance(tag, StepTag):
            steps.append(WitnessStep(tag.task, repr(tag.service), tag.detail))
    return steps


def verify(
    has: HAS, prop: HLTLProperty, config: VerifierConfig | None = None
) -> VerificationResult:
    """One-shot convenience wrapper around :class:`Verifier`."""
    return Verifier(has, config).verify(prop)
