"""Verifier configuration: search budgets and reporting knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class VerifierConfig:
    """Budgets bounding the symbolic search.

    The verification problem is EXPSPACE-hard even in the easiest cells of
    Table 1, so budgets are a practical necessity; exceeding one raises
    :class:`repro.errors.BudgetExceeded` rather than returning an unsound
    verdict.
    """

    km_budget: int = 20_000
    """Karp–Miller node-expansion budget per task summary."""

    max_condition_branches: int = 512
    """Cap on refinements produced when applying one condition."""

    max_outputs_per_summary: int = 256
    """Cap on distinct output types collected per child summary."""

    max_summaries: int = 10_000
    """Cap on memoized child summaries (guards runaway recursion)."""

    collect_witness: bool = True
    """Record witness paths for violated properties."""

    concretize_witnesses: bool = True
    """After a VIOLATED verdict, materialize + replay-validate + minimize
    a concrete counterexample (``repro.witness``) and attach it to the
    job outcome; failures surface as ``non_concretizable``, never as
    job errors.  Minimization gets its own time allotment equal to
    ``time_limit_seconds`` (it runs after the verdict, outside the
    verification deadline)."""

    time_limit_seconds: float | None = None
    """Wall-clock limit for one verify() call; exceeding it raises
    BudgetExceeded (useful for benchmark sweeps)."""

    km_order: str = "lifo"
    """Karp–Miller frontier discipline: ``"lifo"`` (depth-first, the
    reference order), ``"fifo"`` (breadth-first), or ``"covering"``
    (expand nodes with the most ω coordinates / largest counters first,
    which tends to reach dominating — covering — labels earlier and so
    accelerates sooner).  Exploration order changes which witness path is
    found first (never the verdict), so the default stays ``"lifo"`` for
    reproducibility; see docs/performance.md."""

    km_workers: int = 1
    """Worker threads for the parallel Karp–Miller scout phase.  With
    the default ``1`` exploration is purely sequential.  With ``N > 1``
    the root exploration first runs an ``N``-thread work-stealing
    *scout* pass on a disposable engine clone that only warms the
    process-global content-keyed caches (FM, canonicalization), then
    *replays* the untouched sequential ``km_order`` path on the real
    engine — so verdict, witness, and km counts are byte-identical to
    ``km_workers=1`` by construction; see docs/performance.md
    ("Parallel exploration").  Serialized only when non-default so job
    content hashes stay stable (the ``km_order`` pattern)."""

    successor_memo_limit: int = 200_000
    """Entry cap for the per-task successor memo (symbolic transitions
    keyed by state and counter support).  0 disables the memo — useful
    for A/B-testing cache correctness."""

    child_input_memo_limit: int = 200_000
    """Entry cap for the engine's child input-extraction memo (keyed by
    child task and parent canonical key).  Unlike ``max_summaries`` this
    bounds a pure cache: hitting the cap only stops memoizing, never the
    search.  0 disables the memo."""
