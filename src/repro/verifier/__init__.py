"""The HLTL-FO model checker (Section 4.2 + Section 5).

``verify(has, prop)`` decides whether every tree of local runs of the HAS
satisfies the property, by checking that no symbolic tree of runs satisfies
its negation: per-task VASS systems ``V(T, β)`` are explored lazily with a
Karp–Miller engine, children are summarized by memoized input/output
relations ``R_T`` (Lemma 21), and arithmetic is handled by lazily-refined
cells over linear constraints (Section 5).
"""

from repro.verifier.engine import Verifier, verify
from repro.verifier.result import VerificationResult, WitnessStep
from repro.verifier.config import VerifierConfig

__all__ = [
    "Verifier",
    "verify",
    "VerificationResult",
    "WitnessStep",
    "VerifierConfig",
]
