"""The per-task symbolic transition system ``V(T, β)`` (Section 4.2).

States combine a constraint store (partial isomorphism type), the Büchi
automaton state, the child bookkeeping ``ō`` (stage + guessed β and output
per child), and the input-bound counter bits ``c̄_ib``; the Karp–Miller
vector dimensions are the (non-input-bound) TS-isomorphism types.

Transitions implement the symbolic successor relation of Definition 17:

* internal services — pre-condition refinement, TS-type totalization of
  the inserted tuple, restriction to the input variables, post-condition
  refinement on fresh variables, retrieval imposition, counter update
  ``ā(δ, τ̂, τ̂′, c̄_ib)``;
* child opening — guard refinement, input-type extraction, guesses of the
  child's β and output (from the memoized child summary R_Tc), input
  snapshot pinning;
* child closing — absorption of the guessed output type, restriction-(2)
  overwrite semantics, unpinning;
* self closing — guard refinement, terminal state.

Every transition simultaneously advances the Büchi automaton, refining the
store so the transition's condition literals definitely hold.

The successor relation is deterministic and depends on the KM counter
vector only through its TS-type *support* (Definition 17's counter update
``ā(δ, τ̂, τ̂′, c̄_ib)`` reads availability, never magnitudes), which is
what makes the per-(state, support) successor memo of
:meth:`TaskVASS.successors` an exact, invisible cache — see
docs/performance.md.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.errors import VerificationError
from repro.has.services import InternalService, SetUpdate
from repro.has.task import Task
from repro.hltl.formulas import ChildProp, CondProp, ServiceProp
from repro.logic.conditions import Not
from repro.logic.terms import Variable, VarKind
from repro.obs.attribution import ATTRIBUTION
from repro.perf.counters import COUNTERS
from repro.ltl.automaton import Automaton, Transition
from repro.runtime import labels
from repro.runtime.labels import ServiceRef
from repro.symbolic.apply import apply_condition
from repro.symbolic.nodes import Sort
from repro.symbolic.store import ConstraintStore, Inconsistent
from repro.symbolic.tstypes import (
    TSType,
    impose_ts_type,
    insertion_vector,
    ts_slots,
    ts_type_of,
)
from repro.verifier.config import VerifierConfig
from repro.verifier.spec import BetaKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.verifier.engine import Verifier

# child status tuples (hashable parts of the state key)
INIT = ("init",)
CLOSED = ("closed",)
BOT = ("bot",)


@dataclass
class SymState:
    """One state of V(T, β).  ``key`` is the hashable identity."""

    store: ConstraintStore
    q: object
    o_bar: tuple  # sorted tuple of (child_name, status)
    ib: frozenset  # input-bound TS-types currently present
    returning: bool = False
    service: ServiceRef | None = None

    _key: tuple | None = field(default=None, repr=False)

    @property
    def key(self) -> tuple:
        if self._key is None:
            self._key = (
                self.store.canonical_key(),
                self.q,
                self.o_bar,
                self.ib,
                self.returning,
            )
        return self._key

    def status_of(self, child: str):
        for name, status in self.o_bar:
            if name == child:
                return status
        return INIT

    def with_status(self, child: str, status: tuple | None) -> tuple:
        entries = [(n, s) for n, s in self.o_bar if n != child]
        if status is not None and status != INIT:
            entries.append((child, status))
        return tuple(sorted(entries))

    def active_children(self) -> list[tuple[str, tuple]]:
        return [(n, s) for n, s in self.o_bar if s[0] == "active"]


@dataclass(frozen=True)
class StepTag:
    """Witness metadata for one symbolic transition.

    ``inserted`` / ``retrieved`` carry the TS-isomorphism types chosen for
    the artifact-relation update (when any), so witness concretization can
    re-impose the same snapshot when replaying the step.
    """

    task: str
    service: ServiceRef
    detail: str = ""
    inserted: TSType | None = None
    retrieved: TSType | None = None


class TaskVASS:
    """Implicit VASS for one task under one automaton B(T, β)."""

    def __init__(
        self,
        engine: "Verifier",
        task: Task,
        automaton: Automaton,
        is_root: bool,
        config: VerifierConfig,
    ):
        self.engine = engine
        self.task = task
        self.automaton = automaton
        self.is_root = is_root
        self.config = config
        self.slots = ts_slots(task.set_variables, task.input_variables)
        self.registry: list[SymState] = []
        self._ids: dict[tuple, int] = {}
        self._succ_memo: dict[tuple, list] = {}
        self.deadline: float | None = getattr(engine, "deadline", None)
        # Thread-safety audit (docs/performance.md): a TaskVASS is
        # single-threaded by default, but the km_workers>1 scout engine
        # (engine._thread_safe = True) shares one instance across worker
        # threads.  intern()'s check-then-append is the one genuine
        # hazard — an unserialized race mints two ids for one key,
        # breaking the id↔key bijection the label map dedups on — so it
        # takes this lock in thread-safe mode.  The successor memo's
        # check-then-store race is benign (both threads compute the same
        # value; dict assignment is atomic) and stays lock-free.
        self._intern_lock = (
            threading.Lock() if getattr(engine, "_thread_safe", False) else None
        )

    # ------------------------------------------------------------------
    def intern(self, state: SymState) -> int:
        """Dense integer id of a state, unifying states whose keys —
        store canonical key, Büchi state, ō, c̄_ib — coincide.  Interning
        is what folds the unbounded branching of condition refinement
        back into the finite control states Lemma 21's argument needs."""
        key = state.key
        if self._intern_lock is not None:
            with self._intern_lock:
                return self._intern_locked(key, state)
        return self._intern_locked(key, state)

    def _intern_locked(self, key: tuple, state: SymState) -> int:
        state_id = self._ids.get(key)
        if state_id is None:
            state_id = len(self.registry)
            self._ids[key] = state_id
            self.registry.append(state)
        return state_id

    def state(self, state_id: int) -> SymState:
        """The interned state for an id (inverse of :meth:`intern`)."""
        return self.registry[state_id]

    # ------------------------------------------------------------------
    # initial states
    # ------------------------------------------------------------------
    def initial_states(
        self, input_store: ConstraintStore
    ) -> Iterator[tuple[int, dict, object]]:
        """(key, zero-vector, payload) triples for the KM engine."""
        for state in self.initial_symstates(input_store):
            yield self.intern(state), {}, None

    def initial_symstates(self, input_store: ConstraintStore) -> Iterator[SymState]:
        """The un-interned initial states (witness concretization reads
        their stores directly)."""
        base = input_store.copy()
        inputs = set(self.task.input_variables)
        try:
            for variable in self.task.variables:
                if variable in inputs:
                    continue
                node = base.node_of(variable)
                if variable.kind is VarKind.ID:
                    base.assert_null(node)
                else:
                    base.assert_eq(node, base.const(0))
        except Inconsistent:
            return
        opening = labels.opening(self.task.name)
        proto = SymState(store=base, q=None, o_bar=(), ib=frozenset())
        for q0 in self.automaton.initial:
            for transition in self.automaton.successors(q0):
                for refined in self._match_letter(proto, base, opening, transition, None):
                    yield SymState(
                        store=refined,
                        q=transition.target,
                        o_bar=(),
                        ib=frozenset(),
                        service=opening,
                    )

    # ------------------------------------------------------------------
    # the KM interface
    # ------------------------------------------------------------------
    def successors(
        self, state_id: int, vector: Mapping
    ) -> Iterator[tuple[Mapping, int, StepTag]]:
        """Interned symbolic successors, memoized per (state, support).

        The successor relation reads the KM counter vector only through
        the *support* of its TS-type dimensions (which types have at
        least one tuple available for retrieval — Definition 17's
        ``ā(δ, τ̂, τ̂′, c̄_ib)`` never inspects magnitudes), so expansions
        of KM nodes that share the control state and counter support are
        literally identical and are served from a memo.  Generation is
        deterministic, so a memo hit reproduces the uncached expansion
        exactly — verdicts, counts, and witnesses are unchanged.
        """
        state = self.state(state_id)
        if self.deadline is not None and time.monotonic() > self.deadline:
            from repro.errors import BudgetExceeded

            raise BudgetExceeded("verification time limit exceeded", len(self.registry))
        support = frozenset(
            dim
            for dim, value in vector.items()
            if value > 0 and isinstance(dim, TSType)
        )
        key = (state_id, support)
        memo = self._succ_memo.get(key)
        if memo is not None:
            COUNTERS.succ_memo_hits += 1
            for delta, successor_id, tag in memo:
                yield dict(delta), successor_id, tag
            return
        COUNTERS.succ_memo_misses += 1
        expansion = [
            (delta, self.intern(successor), tag)
            for delta, successor, tag in self.successor_states(state, vector)
        ]
        if len(self._succ_memo) < self.config.successor_memo_limit:
            self._succ_memo[key] = expansion
        for delta, successor_id, tag in expansion:
            yield dict(delta), successor_id, tag

    def successor_states(
        self, state: SymState, vector: Mapping
    ) -> Iterator[tuple[Mapping, SymState, StepTag]]:
        """The symbolic successor relation with un-interned states.

        Witness concretization re-derives transitions through this entry
        point: the yielded states' stores share node identity with the
        source store, which the KM interning discards."""
        if state.returning:
            return
        yield from self._internal_transitions(state, vector)
        yield from self._opening_transitions(state)
        yield from self._closing_child_transitions(state)
        yield from self._closing_self_transitions(state)

    # ------------------------------------------------------------------
    # Büchi letter matching
    # ------------------------------------------------------------------
    def _match_letter(
        self,
        state: SymState,
        store: ConstraintStore,
        service: ServiceRef,
        transition: Transition,
        open_beta: Mapping | None,
    ) -> Iterator[ConstraintStore]:
        """Refinements of ``store`` under which the letter
        (store-as-instance, service) satisfies the transition's literals."""
        branches = [store]
        for payload, required in sorted(transition.literals, key=lambda kv: repr(kv)):
            if isinstance(payload, ServiceProp):
                if (payload.ref == service) is not required:
                    return
            elif isinstance(payload, ChildProp):
                value = False
                if (
                    service.is_opening
                    and service.task == payload.task
                    and open_beta is not None
                ):
                    value = bool(open_beta.get(payload.spec, False))
                if value is not required:
                    return
            elif isinstance(payload, CondProp):
                condition = (
                    payload.condition if required else Not(payload.condition)
                )
                refined: list[ConstraintStore] = []
                for branch in branches:
                    refined.extend(
                        itertools.islice(
                            apply_condition(branch, condition),
                            self.config.max_condition_branches,
                        )
                    )
                branches = refined
                if not branches:
                    return
            else:
                raise VerificationError(f"unsupported proposition {payload!r}")
        yield from branches

    def _buchi_step(
        self,
        state: SymState,
        store: ConstraintStore,
        service: ServiceRef,
        open_beta: Mapping | None = None,
    ) -> Iterator[tuple[ConstraintStore, object]]:
        for transition in self.automaton.successors(state.q):
            for refined in self._match_letter(
                state, store, service, transition, open_beta
            ):
                yield refined, transition.target

    # ------------------------------------------------------------------
    # internal services
    # ------------------------------------------------------------------
    def _internal_transitions(
        self, state: SymState, vector: Mapping
    ) -> Iterator[tuple[Mapping, SymState, StepTag]]:
        if state.active_children():
            return  # restriction (4)
        for service in self.task.services:
            ref = labels.internal(self.task.name, service.name)
            ATTRIBUTION.set_context(self.task.name, ref)
            for pre_store in itertools.islice(
                apply_condition(state.store, service.pre),
                self.config.max_condition_branches,
            ):
                yield from self._apply_internal(state, vector, service, ref, pre_store)

    def _apply_internal(
        self,
        state: SymState,
        vector: Mapping,
        service: InternalService,
        ref: ServiceRef,
        pre_store: ConstraintStore,
    ) -> Iterator[tuple[Mapping, SymState, StepTag]]:
        inserted_options: list[tuple[TSType | None, ConstraintStore]]
        if service.update.inserts and self.task.has_set:
            inserted_options = list(ts_type_of(pre_store, self.slots))
        else:
            inserted_options = [(None, pre_store)]
        for inserted, snap_store in inserted_options:
            base = snap_store.restrict(self.task.input_variables)
            for post_store in itertools.islice(
                apply_condition(base, service.post),
                self.config.max_condition_branches,
            ):
                if service.update.retrieves and self.task.has_set:
                    yield from self._retrieval_branches(
                        state, vector, service, ref, inserted, post_store
                    )
                else:
                    yield from self._finish_internal(
                        state, ref, inserted, None, post_store
                    )

    def _retrieval_branches(
        self,
        state: SymState,
        vector: Mapping,
        service: InternalService,
        ref: ServiceRef,
        inserted: TSType | None,
        post_store: ConstraintStore,
    ) -> Iterator[tuple[Mapping, SymState, StepTag]]:
        candidates: set[TSType] = set(state.ib)
        for dim, value in vector.items():
            if isinstance(dim, TSType) and value > 0:
                candidates.add(dim)
        if inserted is not None:
            candidates.add(inserted)  # retrieve the just-inserted tuple
        for retrieved in sorted(candidates, key=repr):
            refined = impose_ts_type(
                post_store, retrieved, self.slots, fresh_slots=()
            )
            if refined is None:
                continue
            yield from self._finish_internal(state, ref, inserted, retrieved, refined)

    def _finish_internal(
        self,
        state: SymState,
        ref: ServiceRef,
        inserted: TSType | None,
        retrieved: TSType | None,
        store: ConstraintStore,
    ) -> Iterator[tuple[Mapping, SymState, StepTag]]:
        set_count = len(self.task.set_variables)
        ib = set(state.ib)
        delta: dict[TSType, int] = {}
        if inserted is not None:
            if inserted.is_input_bound(set_count):
                ib.add(inserted)
            else:
                delta[inserted] = delta.get(inserted, 0) + 1
        if retrieved is not None:
            if retrieved.is_input_bound(set_count):
                if retrieved not in ib:
                    return  # capped counter is 0: retrieval impossible
                ib.discard(retrieved)
            else:
                delta[retrieved] = delta.get(retrieved, 0) - 1
        for refined, q in self._buchi_step(state, store, ref):
            successor = SymState(
                store=refined,
                q=q,
                o_bar=(),  # internal service resets dom(ō)
                ib=frozenset(ib),
                service=ref,
            )
            yield dict(delta), successor, StepTag(
                self.task.name,
                ref,
                self._set_detail(inserted, retrieved),
                inserted=inserted,
                retrieved=retrieved,
            )

    @staticmethod
    def _set_detail(inserted: TSType | None, retrieved: TSType | None) -> str:
        parts = []
        if inserted is not None:
            parts.append(f"+{inserted!r}")
        if retrieved is not None:
            parts.append(f"-{retrieved!r}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # opening a child
    # ------------------------------------------------------------------
    def _opening_transitions(
        self, state: SymState
    ) -> Iterator[tuple[Mapping, SymState, StepTag]]:
        for child in self.task.children:
            if state.status_of(child.name) != INIT:
                continue  # at most one call per segment (restriction 8)
            ref = labels.opening(child.name)
            ATTRIBUTION.set_context(self.task.name, ref)
            for pre_store in itertools.islice(
                apply_condition(state.store, child.opening.pre),
                self.config.max_condition_branches,
            ):
                input_store, input_key = self.engine.make_child_input(
                    pre_store, child
                )
                for beta in self.engine.compiled.betas(child.name):
                    summary = self.engine.summary(child.name, input_store, beta)
                    # the summary may have recursively explored the child
                    # VASS (which owns the context while it runs, and
                    # clears it on exit) — re-enter this opening's scope
                    ATTRIBUTION.set_context(self.task.name, ref)
                    outcomes: list[tuple] = [
                        ("out", out_key) for out_key in sorted(summary.outputs, key=repr)
                    ]
                    if summary.nonreturning:
                        outcomes.append(BOT)
                    for outcome in outcomes:
                        pinned = pre_store.copy()
                        for child_var, parent_var in child.opening.input_map.items():
                            pinned.pin(
                                ("child", child.name, child_var.name),
                                pinned.node_of(parent_var),
                            )
                        status = (
                            "active",
                            frozenset(beta.items()),
                            outcome,
                            input_key,
                        )
                        o_bar = state.with_status(child.name, status)
                        for refined, q in self._buchi_step(
                            state, pinned, ref, open_beta=beta
                        ):
                            successor = SymState(
                                store=refined,
                                q=q,
                                o_bar=o_bar,
                                ib=state.ib,
                                service=ref,
                            )
                            detail = "⊥" if outcome == BOT else "returns"
                            yield {}, successor, StepTag(self.task.name, ref, detail)

    # ------------------------------------------------------------------
    # closing a child
    # ------------------------------------------------------------------
    def _closing_child_transitions(
        self, state: SymState
    ) -> Iterator[tuple[Mapping, SymState, StepTag]]:
        for child_name, status in state.active_children():
            _tag, beta_items, outcome, input_key = status
            if outcome == BOT:
                continue  # never returns
            child = self.task.child(child_name)
            ref = labels.closing(child_name)
            ATTRIBUTION.set_context(self.task.name, ref)
            out_store = self.engine.output_store(
                child_name, input_key, beta_items, outcome[1]
            )
            for merged in self._merge_child_output(state.store, child, out_store):
                o_bar = state.with_status(child_name, CLOSED)
                for refined, q in self._buchi_step(state, merged, ref):
                    successor = SymState(
                        store=refined,
                        q=q,
                        o_bar=o_bar,
                        ib=state.ib,
                        service=ref,
                    )
                    yield {}, successor, StepTag(self.task.name, ref)

    def _merge_child_output(
        self,
        parent_store: ConstraintStore,
        child: Task,
        out_store: ConstraintStore,
    ) -> Iterator[ConstraintStore]:
        """Absorb the child's output type and apply the restriction-(2)
        overwrite semantics; branches on unknown null statuses."""
        base = parent_store.copy()
        translation: dict[Variable, object] = {}
        for child_var, _parent_var in child.opening.input_map.items():
            pinned = base.pinned(("child", child.name, child_var.name))
            if pinned is not None:
                translation[child_var] = pinned
        return_targets: dict[Variable, Variable] = dict(child.closing.output_map)
        for parent_var, child_var in return_targets.items():
            sort = Sort.ID if child_var.kind is VarKind.ID else Sort.NUMERIC
            translation[child_var] = base.fresh(sort)
        try:
            resolution = base.absorb(out_store, translation)
        except Inconsistent:
            return
        if not base.is_consistent():
            return
        base.unpin_prefix(("child", child.name))
        # overwrite semantics, with case splits on unknown null status
        branches = [base]
        for parent_var, child_var in return_targets.items():
            ret_node = resolution.get(child_var)
            next_branches: list[ConstraintStore] = []
            for branch in branches:
                if ret_node is None:
                    next_branches.append(branch)
                    continue
                if parent_var.kind is VarKind.NUMERIC:
                    branch.bind(parent_var, branch.find(ret_node))
                    next_branches.append(branch)
                    continue
                current = branch.node_of(parent_var)
                status = branch.null_status(current)
                if status is True:
                    branch.bind(parent_var, branch.find(ret_node))
                    next_branches.append(branch)
                elif status is False:
                    next_branches.append(branch)  # keep the old value
                else:
                    null_branch = branch.copy()
                    try:
                        null_branch.assert_null(null_branch.node_of(parent_var))
                        null_branch.bind(
                            parent_var, null_branch.find(ret_node)
                        )
                        if null_branch.is_consistent():
                            next_branches.append(null_branch)
                    except Inconsistent:
                        pass
                    keep_branch = branch
                    try:
                        keep_branch.assert_not_null(
                            keep_branch.node_of(parent_var)
                        )
                        if keep_branch.is_consistent():
                            next_branches.append(keep_branch)
                    except Inconsistent:
                        pass
            branches = next_branches
        yield from branches

    # ------------------------------------------------------------------
    # closing self
    # ------------------------------------------------------------------
    def _closing_self_transitions(
        self, state: SymState
    ) -> Iterator[tuple[Mapping, SymState, StepTag]]:
        if self.is_root or state.active_children():
            return
        ref = labels.closing(self.task.name)
        ATTRIBUTION.set_context(self.task.name, ref)
        for pre_store in itertools.islice(
            apply_condition(state.store, self.task.closing.pre),
            self.config.max_condition_branches,
        ):
            for refined, q in self._buchi_step(state, pre_store, ref):
                successor = SymState(
                    store=refined,
                    q=q,
                    o_bar=state.o_bar,
                    ib=state.ib,
                    returning=True,
                    service=ref,
                )
                yield {}, successor, StepTag(self.task.name, ref)

    # ------------------------------------------------------------------
    # acceptance predicates (Lemma 21)
    # ------------------------------------------------------------------
    def is_returning_accepting(self, state_id: int) -> bool:
        """Lemma 21's *returning* paths: the task closed itself with the
        automaton finitely accepting — contributes an output type to R_T."""
        state = self.state(state_id)
        return state.returning and state.q in self.automaton.finite_accepting

    def is_blocking_accepting(self, state_id: int) -> bool:
        """Lemma 21's *blocking* paths: every active child is guessed ⊥
        (never returns) and the automaton finitely accepts — a maximal
        finite run."""
        state = self.state(state_id)
        if state.returning:
            return False
        active = state.active_children()
        if not active:
            return False
        if any(status[2] != BOT for _name, status in active):
            return False
        return state.q in self.automaton.finite_accepting

    def is_lasso_accepting(self, state_id: int) -> bool:
        """Lemma 21's *lasso* paths: Büchi-accepting and not returned —
        witnesses repeated reachability when on a KM-graph cycle."""
        state = self.state(state_id)
        return not state.returning and state.q in self.automaton.buchi_accepting

    def output_of(self, state_id: int) -> ConstraintStore:
        """Output type of a returning state: the store restricted to the
        input and return variables."""
        state = self.state(state_id)
        keep = tuple(self.task.input_variables) + tuple(self.task.return_variables)
        return state.store.restrict(keep)
