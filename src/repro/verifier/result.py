"""Verification results and symbolic witnesses."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WitnessStep:
    """One step of a symbolic counterexample run."""

    task: str
    service: str
    detail: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" [{self.detail}]" if self.detail else ""
        return f"{self.task}: {self.service}{suffix}"


@dataclass
class VerificationStats:
    km_nodes: int = 0
    summaries: int = 0
    condition_branches: int = 0
    wall_seconds: float = 0.0

    def merge(self, other: "VerificationStats") -> "VerificationStats":
        """Accumulate another run's statistics into this one (batch
        aggregation across jobs and worker processes)."""
        self.km_nodes += other.km_nodes
        self.summaries += other.summaries
        self.condition_branches += other.condition_branches
        self.wall_seconds += other.wall_seconds
        return self


@dataclass
class VerificationResult:
    """Outcome of checking ``Γ ⊨ φ``.

    ``holds`` is True when every tree of local runs satisfies the
    property; False comes with a symbolic witness of the negation (a
    prefix of a violating run of the root task, plus the lasso/blocking
    classification).
    """

    holds: bool
    property_name: str
    witness: list[WitnessStep] = field(default_factory=list)
    witness_kind: str = ""  # "lasso" | "blocking" | ""
    stats: VerificationStats = field(default_factory=VerificationStats)

    def explain(self) -> str:
        """Human-readable summary of the result."""
        if self.holds:
            return (
                f"property {self.property_name!r} HOLDS "
                f"({self.stats.km_nodes} symbolic states, "
                f"{self.stats.summaries} task summaries)"
            )
        lines = [
            f"property {self.property_name!r} VIOLATED "
            f"({self.witness_kind or 'run'} counterexample):"
        ]
        for step in self.witness:
            lines.append(f"  {step!r}")
        return "\n".join(lines)
