"""Verification results and symbolic witnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.vass.karp_miller import KMNode
    from repro.verifier.task_vass import StepTag, TaskVASS


@dataclass(frozen=True)
class WitnessStep:
    """One step of a counterexample run.

    ``bindings`` is empty for a purely symbolic witness; concretization
    (``repro.witness``) attaches the step's concrete variable values as
    sorted ``(name, rendered value)`` pairs.
    """

    task: str
    service: str
    detail: str = ""
    bindings: tuple[tuple[str, str], ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" [{self.detail}]" if self.detail else ""
        if self.bindings:
            rendered = ", ".join(f"{name}={value}" for name, value in self.bindings)
            suffix += f" {{{rendered}}}"
        return f"{self.task}: {self.service}{suffix}"


@dataclass
class SymbolicTrace:
    """The raw material of a violation witness, kept in-process only.

    Holds the root :class:`~repro.verifier.task_vass.TaskVASS`, the KM tree
    path to the accepting node (``start`` + one ``(tag, node)`` pair per
    transition), and — for lasso witnesses — the ordered cycle edges.  The
    ``repro.witness`` package turns this into a concrete, replayable run;
    it never crosses a process or serialization boundary.
    """

    vass: "TaskVASS"
    start: "KMNode"
    path: list[tuple["StepTag", "KMNode"]]
    cycle: list[tuple["StepTag", "KMNode"]] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return "lasso" if self.cycle else "blocking"


@dataclass
class VerificationStats:
    km_nodes: int = 0
    summaries: int = 0
    summary_hits: int = 0
    summaries_reused: int = 0
    """Summaries installed from the persistent cross-job store instead of
    being explored (a subset of ``summaries``; their ``km_nodes_reused``
    nodes are credited into ``km_nodes`` so cold and warm totals agree)."""
    km_nodes_reused: int = 0
    """KM nodes credited from store-installed summaries (a subset of
    ``km_nodes``: the exploration the persistent store saved)."""
    condition_branches: int = 0
    wall_seconds: float = 0.0
    fm_seconds: float = 0.0
    """Estimated wall seconds in Fourier–Motzkin decisions/projections
    (sampled; see :mod:`repro.perf.phases`)."""
    canon_seconds: float = 0.0
    """Estimated wall seconds recomputing store canonical keys."""
    expand_seconds: float = 0.0
    """Wall seconds inside Karp–Miller graph construction (outermost
    explorations only — child-summary expansions nested in a parent's
    are not double-counted; fm/canon time is *included*, so subtract
    them for the exclusive expansion cost)."""

    def merge(self, other: "VerificationStats") -> "VerificationStats":
        """Accumulate another run's statistics into this one (batch
        aggregation across jobs and worker processes)."""
        self.km_nodes += other.km_nodes
        self.summaries += other.summaries
        self.summary_hits += other.summary_hits
        self.summaries_reused += other.summaries_reused
        self.km_nodes_reused += other.km_nodes_reused
        self.condition_branches += other.condition_branches
        self.wall_seconds += other.wall_seconds
        self.fm_seconds += other.fm_seconds
        self.canon_seconds += other.canon_seconds
        self.expand_seconds += other.expand_seconds
        return self

    def to_dict(self) -> dict:
        """Every field as plain JSON (``verify --json`` exposes this)."""
        return {
            "km_nodes": self.km_nodes,
            "summaries": self.summaries,
            "summary_hits": self.summary_hits,
            "summaries_reused": self.summaries_reused,
            "km_nodes_reused": self.km_nodes_reused,
            "condition_branches": self.condition_branches,
            "wall_seconds": self.wall_seconds,
            "fm_seconds": self.fm_seconds,
            "canon_seconds": self.canon_seconds,
            "expand_seconds": self.expand_seconds,
        }


@dataclass
class VerificationResult:
    """Outcome of checking ``Γ ⊨ φ``.

    ``holds`` is True when every tree of local runs satisfies the
    property; False comes with a symbolic witness of the negation (a
    prefix of a violating run of the root task, plus the lasso/blocking
    classification).  For lasso witnesses ``loop_start`` is the index in
    ``witness`` where the infinitely-repeated segment begins; it is None
    for blocking witnesses and for held properties.
    """

    holds: bool
    property_name: str
    witness: list[WitnessStep] = field(default_factory=list)
    witness_kind: str = ""  # "lasso" | "blocking" | ""
    loop_start: int | None = None
    stats: VerificationStats = field(default_factory=VerificationStats)
    symbolic_trace: SymbolicTrace | None = field(
        default=None, repr=False, compare=False
    )

    def explain(self) -> str:
        """Human-readable summary of the result."""
        if self.holds:
            return (
                f"property {self.property_name!r} HOLDS "
                f"({self.stats.km_nodes} symbolic states, "
                f"{self.stats.summaries} task summaries)"
            )
        lines = [
            f"property {self.property_name!r} VIOLATED "
            f"({self.witness_kind or 'run'} counterexample):"
        ]
        for index, step in enumerate(self.witness):
            marker = "↻ " if self.loop_start is not None and index == self.loop_start else "  "
            lines.append(f"  {marker}{step!r}")
        if self.loop_start is not None:
            looped = len(self.witness) - self.loop_start
            lines.append(
                f"  (the last {looped} step{'s' if looped != 1 else ''} "
                f"repeat forever)"
            )
        return "\n".join(lines)
