"""The counting quantities behind Tables 1 and 2 (Appendix C.3, D.2).

* ``path_count_F`` — the F(n) of Section 4.1 (max # FK paths of length ≤ n);
* ``navigation_depth_h`` — h(T) per task, recursively over the hierarchy;
* ``navigation_set_size`` — measured |E_T| per anchor (Figure 4's driver:
  bounded for acyclic, polynomial for linearly-cyclic, exponential for
  cyclic schemas);
* ``iso_type_bound`` / ``ts_type_bound`` — the M and D bounds of C.3;
* ``cell_count_bound`` — the (s·d)^O(k) bound of D.2, checked against the
  measured non-empty cell counts of ``repro.arith.cells``;
* ``set_navigation_warnings`` — the static exactness check for the
  verifier's depth-0 TS-types (see ``repro.symbolic.tstypes``).
"""

from __future__ import annotations

from repro.database.fkgraph import ForeignKeyGraph
from repro.database.schema import DatabaseSchema
from repro.has.system import HAS
from repro.has.task import Task
from repro.logic.conditions import Condition, Exists, RelationAtom
from repro.logic.terms import Variable
from repro.symbolic.navigation import universe_size_per_anchor


def path_count_F(schema: DatabaseSchema, length: int) -> int:
    """F(n): max number of distinct FK paths of length ≤ n from a relation."""
    return ForeignKeyGraph(schema).max_path_count(length)


def navigation_depth_h(has: HAS, task: Task | str | None = None) -> int:
    """h(T) (root task by default): 1 + |x̄^T|·F(δ), δ from the children."""
    if task is None:
        task = has.root
    return has.navigation_depth(task if isinstance(task, str) else task.name)


def navigation_set_size(schema: DatabaseSchema, max_length: int) -> int:
    """Measured navigation-universe size (expressions of length ≤ bound,
    max over anchor relations) — Figure 4's quantity."""
    return max(
        universe_size_per_anchor(schema, relation, max_length)
        for relation in schema.names
    )


def iso_type_bound(schema: DatabaseSchema, k: int, nav_size: int) -> int:
    """The M bound of Appendix C.3 for acyclic schemas:
    (r+1)^k · (a·r·k)^(a·r·k) with the measured navigation size standing in
    for a·r·k (tighter and still an upper bound)."""
    r = len(schema)
    return (r + 1) ** k * max(nav_size, 1) ** max(nav_size, 1)


def ts_type_bound(schema: DatabaseSchema, s: int, k: int) -> int:
    """The D bound (number of TS-isomorphism types), depth-0 form:
    partitions of s+k slots × (null + r anchors) per class ≤
    Bell(s+k)·(r+1)^(s+k)."""
    r = len(schema)
    n = s + k
    return _bell(n) * (r + 1) ** n


def _bell(n: int) -> int:
    row = [1]
    for _ in range(n):
        nxt = [row[-1]]
        for value in row:
            nxt.append(nxt[-1] + value)
        row = nxt
    return row[0]


def cell_count_bound(s: int, d: int, k: int, c: int = 2) -> int:
    """The (s·d)^O(k) bound of Appendix D.2 with explicit constant c."""
    return max(1, (s * d)) ** (c * max(k, 1))


def set_navigation_warnings(has: HAS) -> list[str]:
    """Static exactness check for depth-0 TS-types.

    The verifier's counters are exact unless a condition establishes
    navigation facts about the tuple being *inserted* (see
    ``repro.symbolic.tstypes``); this reports, per task with an artifact
    relation, the conditions whose relation atoms are anchored at a set
    variable — the pattern that would require deeper TS-types.
    """
    warnings: list[str] = []
    for task in has.tasks():
        if not task.has_set:
            continue
        set_vars = set(task.set_variables)
        for service in task.services:
            if not service.update.inserts:
                continue
            for which, condition in (("pre", service.pre), ("post", service.post)):
                for atom in _relation_atoms(condition):
                    first = atom.args[0]
                    if isinstance(first, Variable) and first in set_vars:
                        warnings.append(
                            f"{task.name}.{service.name} ({which}): navigates "
                            f"from set variable {first.name} at insertion — "
                            f"depth-0 TS-types may be coarse here"
                        )
    return warnings


def _relation_atoms(condition: Condition) -> list[RelationAtom]:
    if isinstance(condition, Exists):
        return _relation_atoms(condition.body)
    try:
        return [a for a in condition.atoms() if isinstance(a, RelationAtom)]
    except Exception:
        return []
