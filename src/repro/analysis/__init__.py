"""Analytic complexity quantities of Appendix C.3 / D.2 (experiment F4/X2)."""

from repro.analysis.counting import (
    iso_type_bound,
    navigation_depth_h,
    navigation_set_size,
    path_count_F,
    ts_type_bound,
    cell_count_bound,
    set_navigation_warnings,
)

__all__ = [
    "iso_type_bound",
    "navigation_depth_h",
    "navigation_set_size",
    "path_count_F",
    "ts_type_bound",
    "cell_count_bound",
    "set_navigation_warnings",
]
