"""Service labels: the observable alphabet ``Σ^obs_T`` of a task.

A :class:`ServiceRef` names one service occurrence: an internal service of
a task, or the opening/closing service of a task.  For a task ``T`` the
observable set ``Σ^obs_T`` consists of T's internal services, ``σ^o_T``,
``σ^c_T``, and ``σ^o_Tc`` / ``σ^c_Tc`` for each child ``Tc``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.has.task import Task


class ServiceKind(enum.Enum):
    INTERNAL = "internal"
    OPENING = "open"
    CLOSING = "close"


@dataclass(frozen=True)
class ServiceRef:
    """A single service: ``kind`` + owning task + (for internal) its name."""

    kind: ServiceKind
    task: str
    name: str | None = None

    def __post_init__(self) -> None:
        if (self.kind is ServiceKind.INTERNAL) != (self.name is not None):
            raise ValueError("internal services (and only those) carry a name")

    @property
    def is_internal(self) -> bool:
        return self.kind is ServiceKind.INTERNAL

    @property
    def is_opening(self) -> bool:
        return self.kind is ServiceKind.OPENING

    @property
    def is_closing(self) -> bool:
        return self.kind is ServiceKind.CLOSING

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_internal:
            return f"{self.task}.{self.name}"
        return f"σ^{'o' if self.is_opening else 'c'}_{self.task}"


def internal(task: str, name: str) -> ServiceRef:
    return ServiceRef(ServiceKind.INTERNAL, task, name)


def opening(task: str) -> ServiceRef:
    return ServiceRef(ServiceKind.OPENING, task)


def closing(task: str) -> ServiceRef:
    return ServiceRef(ServiceKind.CLOSING, task)


def observable_services(task: Task) -> list[ServiceRef]:
    """``Σ^obs_T``: the services observable in local runs of ``task``."""
    refs = [internal(task.name, s.name) for s in task.services]
    refs.append(opening(task.name))
    refs.append(closing(task.name))
    for child in task.children:
        refs.append(opening(child.name))
        refs.append(closing(child.name))
    return refs


def delta_services(task: Task) -> list[ServiceRef]:
    """``Σ^δ_T``: services whose application can modify ``x̄^T``."""
    refs = [internal(task.name, s.name) for s in task.services]
    refs.append(opening(task.name))
    for child in task.children:
        refs.append(closing(child.name))
    return refs
