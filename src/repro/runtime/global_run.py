"""Global runs as interleavings of a tree of local runs (Appendix B.1).

Events of the tree are the steps of all local runs, quotiented by the
equivalence ∼ of Appendix B.1: the parent's ``σ^o_Tc`` step and the child's
first step form one event, and (for returning children) the parent's
``σ^c_Tc`` step and the child's last step form one event.  A *global run*
is a linear extension of the induced partial order ⪯, lifted to full HAS
configurations.  :func:`linearize` enumerates them for finite trees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping

from repro.database.instance import Value
from repro.errors import RunError
from repro.has.system import HAS
from repro.logic.terms import Variable, VarKind
from repro.runtime.labels import ServiceKind, ServiceRef
from repro.runtime.local_run import LocalRun
from repro.runtime.state import SetTuple
from repro.runtime.tree import RunTree, RunTreeNode


class Stage(enum.Enum):
    INIT = "init"
    ACTIVE = "active"
    CLOSED = "closed"


@dataclass(frozen=True)
class GlobalConfig:
    """One snapshot of a global run: ``(ν̄, stg, S̄)`` plus the service that
    produced it."""

    service: ServiceRef
    valuations: Mapping[Variable, Value]
    stages: Mapping[str, Stage]
    sets: Mapping[str, frozenset[SetTuple]]


@dataclass(frozen=True)
class _Event:
    node_id: int
    step_index: int


def _close_after(run: LocalRun, index: int, child_name: str) -> int | None:
    for position in range(index + 1, len(run.steps)):
        service = run.steps[position].service
        if service.kind is ServiceKind.CLOSING and service.task == child_name:
            return position
    return None


class _TreeIndex:
    """Event classes of a finite tree and the partial order ⪯ over them."""

    def __init__(self, tree: RunTree):
        self.nodes: list[RunTreeNode] = list(tree.walk())
        self.node_ids = {id(node): idx for idx, node in enumerate(self.nodes)}
        # representative: event -> class representative event
        self.rep: dict[_Event, _Event] = {}
        # companion: representative -> merged child-side event (if any)
        self.companion: dict[_Event, _Event] = {}
        events = [
            _Event(node_id, step_index)
            for node_id, node in enumerate(self.nodes)
            for step_index in range(len(node.run.steps))
        ]
        for event in events:
            self.rep[event] = event
        for node_id, node in enumerate(self.nodes):
            run = node.run
            for open_index, child_node in node.children.items():
                child_id = self.node_ids[id(child_node)]
                child_run = child_node.run
                parent_open = _Event(node_id, open_index)
                child_first = _Event(child_id, 0)
                self.rep[child_first] = parent_open
                self.companion[parent_open] = child_first
                if child_run.complete and child_run.is_returning:
                    close_index = _close_after(run, open_index, child_run.task.name)
                    if close_index is not None:
                        parent_close = _Event(node_id, close_index)
                        child_last = _Event(child_id, len(child_run.steps) - 1)
                        self.rep[child_last] = parent_close
                        self.companion[parent_close] = child_last
        self.classes = sorted(
            {self.rep[e] for e in events},
            key=lambda e: (e.node_id, e.step_index),
        )
        self.preds: dict[_Event, set[_Event]] = {c: set() for c in self.classes}
        for event in events:
            if event.step_index == 0:
                continue
            earlier = _Event(event.node_id, event.step_index - 1)
            source, target = self.rep[earlier], self.rep[event]
            if source != target:
                self.preds[target].add(source)


def linearize(
    has: HAS, tree: RunTree, limit: int | None = 1
) -> Iterator[list[GlobalConfig]]:
    """Yield up to ``limit`` global runs induced by the tree (all when
    ``limit`` is None).  The tree must be finite and full."""
    if tree.root.run.task.name != has.root.name:
        raise RunError("global runs require a full tree (rooted at the root task)")
    index = _TreeIndex(tree)
    produced = 0
    for order in _topological_orders(index):
        yield _lift(has, index, order)
        produced += 1
        if limit is not None and produced >= limit:
            return


def count_linearizations(has: HAS, tree: RunTree, cap: int = 10_000) -> int:
    """Number of distinct interleavings (up to ``cap``)."""
    total = 0
    for _ in linearize(has, tree, limit=cap):
        total += 1
    return total


def _topological_orders(index: _TreeIndex) -> Iterator[list[_Event]]:
    """All linear extensions of ⪯ over event classes (lazily)."""
    remaining = set(index.classes)
    indegree = {c: len(index.preds[c]) for c in index.classes}
    order: list[_Event] = []

    def backtrack() -> Iterator[list[_Event]]:
        if not remaining:
            yield list(order)
            return
        ready = sorted(
            (c for c in remaining if indegree[c] == 0),
            key=lambda c: (c.node_id, c.step_index),
        )
        for event in ready:
            remaining.discard(event)
            order.append(event)
            decremented = []
            for other in remaining:
                if event in index.preds[other]:
                    indegree[other] -= 1
                    decremented.append(other)
            yield from backtrack()
            for other in decremented:
                indegree[other] += 1
            order.pop()
            remaining.add(event)

    yield from backtrack()


def _lift(has: HAS, index: _TreeIndex, order: list[_Event]) -> list[GlobalConfig]:
    """Lift a linearization of event classes to global configurations."""
    valuations: dict[Variable, Value] = {}
    for task in has.tasks():
        for variable in task.variables:
            valuations[variable] = None if variable.kind is VarKind.ID else Fraction(0)
    stages: dict[str, Stage] = {task.name: Stage.INIT for task in has.tasks()}
    sets: dict[str, frozenset[SetTuple]] = {
        task.name: frozenset() for task in has.tasks()
    }
    configs: list[GlobalConfig] = []
    for event in order:
        configs.append(_apply(has, index, event, valuations, stages, sets))
    return configs


def _apply(
    has: HAS,
    index: _TreeIndex,
    event: _Event,
    valuations: dict[Variable, Value],
    stages: dict[str, Stage],
    sets: dict[str, frozenset[SetTuple]],
) -> GlobalConfig:
    node = index.nodes[event.node_id]
    run = node.run
    step = run.steps[event.step_index]
    task = run.task
    service = step.service

    def load(local_run: LocalRun, state) -> None:
        for variable in local_run.task.variables:
            valuations[variable] = state.valuation[variable]
        sets[local_run.task.name] = state.set_contents

    if service.kind is ServiceKind.INTERNAL:
        load(run, step.state)
        for descendant in task.descendants():
            stages[descendant.name] = Stage.INIT
    elif service.kind is ServiceKind.OPENING and service.task == task.name:
        # the root's own opening (non-root self-openings are merged away)
        load(run, step.state)
        stages[task.name] = Stage.ACTIVE
    elif service.kind is ServiceKind.OPENING:
        load(run, step.state)  # parent state is unchanged by the opening
        stages[service.task] = Stage.ACTIVE
        sets[service.task] = frozenset()
        companion = index.companion.get(event)
        if companion is not None:
            child_node = index.nodes[companion.node_id]
            load(child_node.run, child_node.run.steps[0].state)
    elif service.kind is ServiceKind.CLOSING and service.task != task.name:
        load(run, step.state)
        stages[service.task] = Stage.CLOSED
        sets[service.task] = frozenset()
    else:  # the task's own closing (root only; merged away otherwise)
        load(run, step.state)
        stages[task.name] = Stage.CLOSED
    return GlobalConfig(
        service=service,
        valuations=dict(valuations),
        stages=dict(stages),
        sets=dict(sets),
    )
