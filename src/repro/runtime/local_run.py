"""Local runs of a task (Definition 9) and their validation.

A local run records the task's inputs, its outputs (``None`` standing for
⊥ when the run does not return), and the sequence of (instance, service)
pairs.  Infinite runs are represented by finite prefixes plus an explicit
flag; the verifier works symbolically and only the simulator materializes
runs, always finitely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.database.instance import DatabaseInstance, Value
from repro.errors import RunError
from repro.fuzz.coverage import COVERAGE
from repro.has.task import Task
from repro.logic.terms import Variable, VarKind
from repro.runtime.labels import ServiceKind, ServiceRef
from repro.runtime.state import TaskState, initial_state
from repro.runtime.transition import (
    check_close_child,
    check_internal_transition,
    check_open_child,
)


@dataclass(frozen=True)
class Step:
    """One element ``(I_i, σ_i)`` of a local run."""

    state: TaskState
    service: ServiceRef


@dataclass
class LocalRun:
    """A (finite prefix of a) local run of ``task``."""

    task: Task
    inputs: Mapping[Variable, Value]
    steps: list[Step] = field(default_factory=list)
    complete: bool = True
    """True when the run is whole: either returning (last service σ^c_T)
    or a deliberately blocking/finished prefix; False for a prefix of a
    longer (possibly infinite) run."""

    @property
    def is_returning(self) -> bool:
        return bool(self.steps) and self._is_self_close(self.steps[-1].service)

    def _is_self_close(self, service: ServiceRef) -> bool:
        return service.kind is ServiceKind.CLOSING and service.task == self.task.name

    @property
    def outputs(self) -> dict[Variable, Value] | None:
        """ν_out: the returned values (over x̄^T_ret), or None for ⊥."""
        if not self.is_returning:
            return None
        final = self.steps[-1].state
        return {v: final.valuation[v] for v in self.task.return_variables}

    def services(self) -> list[ServiceRef]:
        return [step.service for step in self.steps]

    def __len__(self) -> int:
        return len(self.steps)


def segments(run: LocalRun) -> list[list[int]]:
    """Indices of the segments of the run (Definition 9): maximal intervals
    with no internal service of the task after the first position."""
    result: list[list[int]] = []
    current: list[int] = []
    for index, step in enumerate(run.steps):
        service = step.service
        is_boundary = (
            service.kind is ServiceKind.INTERNAL
            or (service.task == run.task.name and service.kind is ServiceKind.OPENING)
        )
        if is_boundary and current:
            result.append(current)
            current = []
        current.append(index)
    if current:
        result.append(current)
    return result


def validate_local_run(run: LocalRun, db: DatabaseInstance) -> None:
    """Check every clause of Definition 9; raise :class:`RunError` if any
    fails.  Child I/O consistency is checked at tree level, not here."""
    try:
        _validate_local_run(run, db)
    except RunError:
        COVERAGE.hit("sim:reject")
        raise


def _validate_local_run(run: LocalRun, db: DatabaseInstance) -> None:
    task = run.task
    steps = run.steps
    if not steps:
        raise RunError(f"{task.name}: empty local run")
    first = steps[0]
    if not (first.service.kind is ServiceKind.OPENING and first.service.task == task.name):
        raise RunError(f"{task.name}: runs must start with σ^o_T")
    expected0 = initial_state(task, run.inputs)
    if first.state != expected0:
        raise RunError(f"{task.name}: bad initial instance")
    child_names = {c.name for c in task.children}
    for index in range(1, len(steps)):
        prev, step = steps[index - 1], steps[index]
        service = step.service
        if service.kind is ServiceKind.INTERNAL:
            if service.task != task.name:
                raise RunError(f"{task.name}: foreign internal service {service!r}")
            COVERAGE.hit("sim:check:internal")
            check_internal_transition(
                task, task.service(service.name), db, prev.state, step.state
            )
        elif service.kind is ServiceKind.OPENING:
            if service.task == task.name:
                raise RunError(f"{task.name}: σ^o_T occurs mid-run")
            if service.task not in child_names:
                raise RunError(f"{task.name}: opening unknown child {service.task!r}")
            COVERAGE.hit("sim:check:open_child")
            check_open_child(task, task.child(service.task), db, prev.state, step.state)
        elif service.kind is ServiceKind.CLOSING:
            if service.task == task.name:
                COVERAGE.hit("sim:check:self_close")
                if index != len(steps) - 1:
                    raise RunError(f"{task.name}: σ^c_T not at the end")
                if not task.closing.pre.evaluate(db, prev.state.valuation):
                    raise RunError(f"{task.name}: closing guard fails")
                if step.state != prev.state:
                    raise RunError(f"{task.name}: σ^c_T must not change the instance")
            else:
                if service.task not in child_names:
                    raise RunError(
                        f"{task.name}: closing unknown child {service.task!r}"
                    )
                COVERAGE.hit("sim:check:close_child")
                check_close_child(
                    task, task.child(service.task), prev.state, step.state
                )
    _validate_segments(run)


def _validate_segments(run: LocalRun) -> None:
    """Segment discipline: each child opened at most once per segment and
    closed within it unless the segment is blocking/terminal (restrictions
    4 and 8)."""
    task = run.task
    for segment in segments(run):
        is_last = segment[-1] == len(run.steps) - 1
        opened: set[str] = set()
        closed: set[str] = set()
        for index in segment:
            service = run.steps[index].service
            if service.task == task.name:
                continue
            if service.kind is ServiceKind.OPENING:
                if service.task in opened:
                    raise RunError(
                        f"{task.name}: child {service.task!r} opened twice in a "
                        f"segment (restriction 8)"
                    )
                opened.add(service.task)
            elif service.kind is ServiceKind.CLOSING:
                if service.task not in opened or service.task in closed:
                    raise RunError(
                        f"{task.name}: child {service.task!r} closes without a "
                        f"matching open in the segment"
                    )
                closed.add(service.task)
        if not is_last and opened - closed:
            dangling = ", ".join(sorted(opened - closed))
            raise RunError(
                f"{task.name}: children {{{dangling}}} still active at an internal "
                f"transition (restriction 4)"
            )
        if is_last and opened - closed:
            COVERAGE.hit("sim:check:blocking_segment")
