"""Local transitions (Definition 8): checking and successor enumeration.

Checking is exact.  Successor *enumeration* (used by the simulator) solves
post-conditions by enumerating ID-variable candidates from the database,
binding numeric variables through true relation atoms, and solving the
remaining arithmetic with Fourier–Motzkin; every produced successor is
re-checked concretely, so enumeration is sound (it may be incomplete only
in that it samples finitely many numeric witnesses, which is inherent to
concrete simulation of ∃ℝ choices).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from repro.arith.constraints import Constraint
from repro.arith.fm import sample_solution
from repro.database.instance import DatabaseInstance, Identifier, Value
from repro.errors import RunError
from repro.has.services import InternalService, SetUpdate
from repro.has.task import Task
from repro.logic.conditions import (
    ArithAtom,
    Condition,
    Eq,
    RelationAtom,
)
from repro.logic.terms import Const, NullTerm, Term, Variable, VarKind
from repro.runtime.state import SetTuple, TaskState


# ----------------------------------------------------------------------
# transition checking (exact, Definition 8)
# ----------------------------------------------------------------------
def check_internal_transition(
    task: Task,
    service: InternalService,
    db: DatabaseInstance,
    prev: TaskState,
    nxt: TaskState,
) -> None:
    """Raise :class:`RunError` unless ``prev --service--> nxt`` is legal."""
    if not service.pre.evaluate(db, prev.valuation):
        raise RunError(f"{task.name}.{service.name}: pre-condition fails")
    if not service.post.evaluate(db, nxt.valuation):
        raise RunError(f"{task.name}.{service.name}: post-condition fails")
    for variable in task.input_variables:
        if prev.valuation[variable] != nxt.valuation[variable]:
            raise RunError(
                f"{task.name}.{service.name}: input variable {variable!r} changed "
                f"(restriction 1)"
            )
    _check_set_update(task, service.update, prev, nxt)


def _check_set_update(
    task: Task, update: SetUpdate, prev: TaskState, nxt: TaskState
) -> None:
    inserted = prev.set_tuple(task)
    retrieved = nxt.set_tuple(task)
    if update is SetUpdate.NONE:
        expected = prev.set_contents
    elif update is SetUpdate.INSERT:
        expected = prev.set_contents | {inserted}
    elif update is SetUpdate.RETRIEVE:
        if retrieved not in prev.set_contents:
            raise RunError(f"{task.name}: retrieved tuple {retrieved!r} not in S^T")
        expected = prev.set_contents - {retrieved}
    else:  # BOTH
        pool = prev.set_contents | {inserted}
        if retrieved not in pool:
            raise RunError(
                f"{task.name}: retrieved tuple {retrieved!r} not in S^T ∪ {{inserted}}"
            )
        expected = pool - {retrieved}
    if nxt.set_contents != expected:
        raise RunError(f"{task.name}: artifact relation not updated per δ")


def check_open_child(
    parent: Task, child: Task, db: DatabaseInstance, prev: TaskState, nxt: TaskState
) -> None:
    if not child.opening.pre.evaluate(db, prev.valuation):
        raise RunError(f"{child.name}: opening guard fails")
    if dict(prev.valuation) != dict(nxt.valuation) or prev.set_contents != nxt.set_contents:
        raise RunError(f"{parent.name}: opening a child must not change the state")


def check_close_child(
    parent: Task,
    child: Task,
    prev: TaskState,
    nxt: TaskState,
    child_outputs: Mapping[Variable, Value] | None = None,
) -> None:
    """Check the parent-side transition when ``child`` returns.

    Per Definition 8 + restriction (2): variables outside ``x̄^T_{Tc↑}``
    are unchanged; returned ID variables that were non-null keep their
    value.  When ``child_outputs`` (the child's ν_out) is supplied, the
    overwritten variables must receive the mapped returned values
    (Definition 10 / Lemma 31 semantics for numeric returns).
    """
    returned = set(child.closing.output_map.keys())
    for variable in parent.variables:
        old = prev.valuation[variable]
        new = nxt.valuation[variable]
        if variable not in returned:
            if old != new:
                raise RunError(
                    f"{parent.name}: {variable!r} changed on close of {child.name}"
                )
            continue
        if variable.kind is VarKind.ID and old is not None:
            if old != new:
                raise RunError(
                    f"{parent.name}: non-null ID {variable!r} overwritten on return "
                    f"(restriction 2)"
                )
            continue
        if child_outputs is not None:
            source = child.closing.output_map[variable]
            if new != child_outputs.get(source):
                raise RunError(
                    f"{parent.name}: {variable!r} must receive the child's "
                    f"{source!r} on return"
                )
    if prev.set_contents != nxt.set_contents:
        raise RunError(f"{parent.name}: S^T changed on close of {child.name}")


# ----------------------------------------------------------------------
# successor enumeration (for the simulator)
# ----------------------------------------------------------------------
class EnumerationLimits:
    """Caps keeping concrete successor enumeration tractable."""

    def __init__(self, max_id_combinations: int = 4096, max_results: int = 64):
        self.max_id_combinations = max_id_combinations
        self.max_results = max_results


def _id_candidates(db: DatabaseInstance) -> list[Value]:
    ids: list[Value] = [None]
    for rel in db.schema:
        ids.extend(sorted(db._rows[rel.name].keys(), key=lambda i: (i.relation, i.label)))
    return ids


def enumerate_post_valuations(
    variables: tuple[Variable, ...],
    post: Condition,
    db: DatabaseInstance,
    preserved: Mapping[Variable, Value],
    limits: EnumerationLimits | None = None,
) -> Iterator[dict[Variable, Value]]:
    """Yield valuations of ``variables`` satisfying ``post`` that agree with
    ``preserved`` on its keys.  Sound; samples numeric witnesses via FM."""
    limits = limits or EnumerationLimits()
    # hoist positive ∃ out of the post-condition: bound variables are
    # enumerated like task variables and dropped from the result
    from repro.symbolic.apply import pull_exists

    bound, matrix = pull_exists(post)
    post = matrix
    search_space = tuple(variables) + tuple(bound)
    free_id_vars = [
        v for v in search_space if v.kind is VarKind.ID and v not in preserved
    ]
    free_num_vars = [
        v
        for v in search_space
        if v.kind is VarKind.NUMERIC and v not in preserved
    ]
    candidates = _id_candidates(db)
    produced = 0
    seen: set[frozenset] = set()
    combos = itertools.product(candidates, repeat=len(free_id_vars))
    for count, combo in enumerate(combos):
        if count >= limits.max_id_combinations or produced >= limits.max_results:
            return
        valuation: dict[Variable, Value] = dict(preserved)
        valuation.update(zip(free_id_vars, combo))
        for numeric_valuation in _solve_numeric(
            post, db, valuation, free_num_vars
        ):
            full = dict(valuation)
            full.update(numeric_valuation)
            if post.evaluate(db, full):
                result = {
                    variable: value
                    for variable, value in full.items()
                    if variable not in bound
                }
                key = frozenset(result.items())
                if key not in seen:
                    seen.add(key)
                    produced += 1
                    yield result
                    if produced >= limits.max_results:
                        return


def _solve_numeric(
    post: Condition,
    db: DatabaseInstance,
    id_valuation: Mapping[Variable, Value],
    free_num_vars: list[Variable],
) -> Iterator[dict[Variable, Fraction]]:
    """Sample numeric valuations plausibly satisfying ``post`` given fixed
    ID values: per abstract satisfying assignment, gather the induced
    linear constraints and let FM produce one witness."""
    if not free_num_vars:
        yield {}
        return
    try:
        assignments = list(post.satisfying_atom_assignments())
    except Exception:
        assignments = []
    emitted: set[frozenset] = set()
    fixed_numeric = {
        variable: Fraction(value)
        for variable, value in id_valuation.items()
        if variable.kind is VarKind.NUMERIC
        and value is not None
        and not isinstance(value, Identifier)
    }
    for assignment in assignments:
        constraint_sets = _constraints_for_assignment(
            assignment, db, id_valuation, set(free_num_vars)
        )
        for constraints in constraint_sets:
            constraints = [c.substitute(fixed_numeric) for c in constraints]
            solution = sample_solution(constraints)
            if solution is None:
                continue
            witness = {
                v: solution.get(v, Fraction(0)) for v in free_num_vars
            }
            key = frozenset(witness.items())
            if key not in emitted:
                emitted.add(key)
                yield witness
    # Fallback: all zeros (handles posts with no numeric atoms).
    zero = {v: Fraction(0) for v in free_num_vars}
    if frozenset(zero.items()) not in emitted:
        yield zero


def _constraints_for_assignment(
    assignment: Mapping,
    db: DatabaseInstance,
    id_valuation: Mapping[Variable, Value],
    free_num_vars: set[Variable],
) -> Iterator[list[Constraint]]:
    """Translate an abstract atom assignment into linear constraint sets.

    True relation atoms whose ID matches a database row pin their numeric
    positions to the row's values (one branch per matching row); arithmetic
    atoms contribute themselves or their negation.  False relation atoms
    and ID equalities are not encoded — the caller re-checks concretely.
    """
    from repro.arith.constraints import compare, Rel
    from repro.arith.linexpr import var as linvar, const as linconst

    base: list[Constraint] = []
    row_choices: list[list[list[Constraint]]] = []
    for atom, truth in assignment.items():
        if isinstance(atom, ArithAtom):
            base.append(atom.constraint if truth else atom.constraint.negate())
        elif isinstance(atom, Eq) and not atom.is_id_equality and truth:
            base.append(_numeric_eq_constraint(atom))
        elif isinstance(atom, Eq) and not atom.is_id_equality and not truth:
            base.append(_numeric_eq_constraint(atom).negate())
        elif isinstance(atom, RelationAtom) and truth:
            options = _row_constraints(atom, db, id_valuation)
            if options is None:
                continue
            if not options:
                return  # no matching row: assignment unrealizable
            row_choices.append(options)
    for picks in itertools.product(*row_choices) if row_choices else [()]:
        constraints = list(base)
        for pick in picks:
            constraints.extend(pick)
        yield constraints


def _numeric_eq_constraint(atom: Eq) -> Constraint:
    from repro.arith.constraints import compare, Rel
    from repro.arith.linexpr import var as linvar, const as linconst, to_linexpr

    def term_expr(term: Term):
        if isinstance(term, Const):
            return linconst(term.value)
        assert isinstance(term, Variable)
        return linvar(term)

    return compare(term_expr(atom.left), Rel.EQ, term_expr(atom.right))


def _row_constraints(
    atom: RelationAtom, db: DatabaseInstance, id_valuation: Mapping[Variable, Value]
) -> list[list[Constraint]] | None:
    """Constraint options (one per matching row) pinning numeric positions.

    Returns None when the atom's ID argument is not determined by
    ``id_valuation`` (nothing to encode), and [] when no row matches.
    """
    from repro.arith.constraints import compare, Rel
    from repro.arith.linexpr import var as linvar, const as linconst

    rel = db.schema.relation(atom.relation)
    names = rel.attribute_names
    ident_term = atom.args[0]
    if not isinstance(ident_term, Variable):
        return None
    ident = id_valuation.get(ident_term)
    if ident is None or not isinstance(ident, Identifier):
        return []
    if ident.relation != atom.relation:
        return []
    row = db.lookup(ident)
    if row is None:
        return []
    constraints: list[Constraint] = []
    for position, term in enumerate(atom.args):
        attr = rel.attribute(names[position])
        value = row[position]
        if attr.is_id_valued:
            if isinstance(term, Variable):
                bound = id_valuation.get(term, "__unset__")
                if bound != "__unset__" and bound != value:
                    return []
            continue
        # numeric position
        if isinstance(term, Const):
            if Fraction(term.value) != Fraction(value):
                return []
        elif isinstance(term, Variable):
            constraints.append(
                compare(linvar(term), Rel.EQ, linconst(Fraction(value)))
            )
    return [constraints]


def set_update_results(
    task: Task, update: SetUpdate, prev: TaskState, next_valuation: Mapping[Variable, Value]
) -> Iterator[tuple[dict[Variable, Value], frozenset[SetTuple]]]:
    """Apply δ: yield (possibly adjusted valuation, new set contents).

    For retrievals the retrieved tuple overwrites ``s̄^T`` in the next
    valuation (Definition 8), one result per retrievable tuple.
    """
    if update is SetUpdate.NONE:
        yield dict(next_valuation), prev.set_contents
        return
    inserted = prev.set_tuple(task)
    if update is SetUpdate.INSERT:
        yield dict(next_valuation), prev.set_contents | {inserted}
        return
    pool = (
        prev.set_contents | {inserted}
        if update is SetUpdate.BOTH
        else prev.set_contents
    )
    for tup in sorted(pool, key=repr):
        valuation = dict(next_valuation)
        for variable, value in zip(task.set_variables, tup):
            valuation[variable] = value
        yield valuation, pool - {tup}
