"""Trees of local runs (Definition 10).

A :class:`RunTree` links a local run of a task to the local runs of the
children it opens: the edge label ``i`` is the position of the child's
opening service in the parent's run.  Validation checks the input/output
consistency clauses of Definition 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.database.instance import DatabaseInstance
from repro.errors import RunError
from repro.logic.terms import VarKind
from repro.runtime.labels import ServiceKind
from repro.runtime.local_run import LocalRun, validate_local_run


@dataclass
class RunTreeNode:
    """A node: one local run plus edges to child-run nodes, keyed by the
    index of the opening service in this run."""

    run: LocalRun
    children: dict[int, "RunTreeNode"] = field(default_factory=dict)

    def walk(self) -> Iterator["RunTreeNode"]:
        yield self
        for child in self.children.values():
            yield from child.walk()


@dataclass
class RunTree:
    """A tree of local runs; *full* when rooted at the root task."""

    root: RunTreeNode

    def walk(self) -> Iterator[RunTreeNode]:
        return self.root.walk()

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())


def validate_run_tree(tree: RunTree, db: DatabaseInstance) -> None:
    """Check Definition 10 on every edge; local runs are checked too."""
    for node in tree.walk():
        validate_local_run(node.run, db)
        _validate_edges(node)


def _validate_edges(node: RunTreeNode) -> None:
    run = node.run
    task = run.task
    opening_positions = {
        index: step.service.task
        for index, step in enumerate(run.steps)
        if step.service.kind is ServiceKind.OPENING and step.service.task != task.name
    }
    for index in opening_positions:
        if index not in node.children:
            raise RunError(
                f"{task.name}: opening at position {index} has no child run"
            )
    for index, child_node in node.children.items():
        if index not in opening_positions:
            raise RunError(f"{task.name}: edge label {index} is not an opening")
        child_task_name = opening_positions[index]
        child_run = child_node.run
        if child_run.task.name != child_task_name:
            raise RunError(
                f"{task.name}: edge {index} opens {child_task_name!r} but the "
                f"child run is of {child_run.task.name!r}"
            )
        child_task = task.child(child_task_name)
        # ν_in = f_in ∘ ν_i
        parent_state = run.steps[index].state
        for child_var, parent_var in child_task.opening.input_map.items():
            expected = parent_state.valuation[parent_var]
            actual = child_run.inputs.get(child_var, "__missing__")
            if actual != expected:
                raise RunError(
                    f"{child_task_name}: input {child_var!r} is {actual!r}, "
                    f"parent passes {expected!r}"
                )
        # returning ↔ a matching σ^c_Tc exists after position index
        close_index = _first_close_after(run, index, child_task_name)
        if child_run.complete and child_run.is_returning:
            if close_index is None:
                raise RunError(
                    f"{task.name}: child {child_task_name!r} returns but no "
                    f"σ^c is observed in the parent"
                )
            outputs = child_run.outputs
            assert outputs is not None
            before = run.steps[close_index - 1].state
            after = run.steps[close_index].state
            for parent_var, child_var in child_task.closing.output_map.items():
                old = before.valuation[parent_var]
                new = after.valuation[parent_var]
                overwritable = (
                    parent_var.kind is VarKind.NUMERIC or old is None
                )
                if overwritable and new != outputs[child_var]:
                    raise RunError(
                        f"{task.name}: on return of {child_task_name!r}, "
                        f"{parent_var!r} is {new!r} but the child returned "
                        f"{outputs[child_var]!r}"
                    )
        elif child_run.complete and not child_run.is_returning:
            if close_index is not None:
                raise RunError(
                    f"{task.name}: parent observes σ^c of {child_task_name!r} "
                    f"but the child run does not return"
                )


def _first_close_after(run: LocalRun, index: int, child_name: str) -> int | None:
    for position in range(index + 1, len(run.steps)):
        service = run.steps[position].service
        if service.kind is ServiceKind.CLOSING and service.task == child_name:
            return position
    return None
