"""Task instance state: a valuation of ``x̄^T`` plus the contents of ``S^T``
(Definition 8), and the initial state of a local run (Definition 9)."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.database.instance import Identifier, Value
from repro.has.task import Task
from repro.logic.terms import Variable, VarKind

SetTuple = tuple[Value, ...]


@dataclass(frozen=True)
class TaskState:
    """An instance ``(ν, S)`` of a task: immutable for sharing in runs."""

    valuation: Mapping[Variable, Value]
    set_contents: frozenset[SetTuple] = frozenset()

    def value(self, variable: Variable) -> Value:
        return self.valuation[variable]

    def with_valuation(self, valuation: Mapping[Variable, Value]) -> "TaskState":
        return TaskState(dict(valuation), self.set_contents)

    def with_set(self, contents: frozenset[SetTuple]) -> "TaskState":
        return TaskState(self.valuation, contents)

    def set_tuple(self, task: Task) -> SetTuple:
        """The current value of ``s̄^T`` under this state's valuation."""
        return tuple(self.valuation[v] for v in task.set_variables)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskState):
            return NotImplemented
        return (
            dict(self.valuation) == dict(other.valuation)
            and self.set_contents == other.set_contents
        )

    def __hash__(self) -> int:
        return hash(
            (frozenset(self.valuation.items()), self.set_contents)
        )


def initial_state(task: Task, inputs: Mapping[Variable, Value]) -> TaskState:
    """The first instance of a local run of ``task`` (Definition 9):
    input variables get ``inputs``, other ID variables ``null``, other
    numeric variables 0, and the artifact relation starts empty."""
    valuation: dict[Variable, Value] = {}
    input_vars = set(task.input_variables)
    for variable in task.variables:
        if variable in input_vars:
            if variable not in inputs:
                raise KeyError(f"missing input value for {variable!r}")
            valuation[variable] = inputs[variable]
        elif variable.kind is VarKind.ID:
            valuation[variable] = None
        else:
            valuation[variable] = Fraction(0)
    return TaskState(valuation, frozenset())
