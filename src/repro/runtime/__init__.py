"""Concrete operational semantics of HAS (Definitions 8–10, Appendix B.1).

This package implements task instances, local transitions, local runs,
trees of local runs, global runs obtained by interleaving, and a
best-effort forward simulator used by examples and by cross-validation
tests of the symbolic verifier.
"""

from repro.runtime.labels import ServiceKind, ServiceRef
from repro.runtime.state import TaskState, initial_state
from repro.runtime.local_run import LocalRun, Step, validate_local_run
from repro.runtime.tree import RunTree, RunTreeNode, validate_run_tree
from repro.runtime.global_run import GlobalConfig, linearize
from repro.runtime.simulator import Simulator, SimulationConfig

__all__ = [
    "ServiceKind",
    "ServiceRef",
    "TaskState",
    "initial_state",
    "LocalRun",
    "Step",
    "validate_local_run",
    "RunTree",
    "RunTreeNode",
    "validate_run_tree",
    "GlobalConfig",
    "linearize",
    "Simulator",
    "SimulationConfig",
]
