"""A forward simulator for HAS over a concrete database.

The simulator executes random (seeded) runs, maintaining the tree of local
runs as it goes, and returns the resulting :class:`RunTree` prefix.  It is
used by the examples and by cross-validation tests: every run it produces
validates against the Definition 9/10 checkers, and satisfaction of
HLTL-FO properties on simulated trees is compared with the verifier's
verdict on small systems.

Post-conditions are solved by bounded enumeration plus Fourier–Motzkin
sampling (see ``repro.runtime.transition``); the simulator is therefore
sound but deliberately incomplete — it explores *some* runs, which is all a
concrete tester can do over infinite domains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.database.instance import DatabaseInstance, Value
from repro.errors import RunError
from repro.has.system import HAS
from repro.has.task import Task
from repro.logic.terms import Variable, VarKind
from repro.runtime import labels
from repro.runtime.local_run import LocalRun, Step, validate_local_run
from repro.runtime.state import TaskState, initial_state
from repro.runtime.transition import (
    EnumerationLimits,
    enumerate_post_valuations,
    set_update_results,
)
from repro.runtime.tree import RunTree, RunTreeNode


@dataclass
class SimulationConfig:
    max_steps: int = 50
    seed: int = 0
    max_choices_per_step: int = 16
    limits: EnumerationLimits = field(default_factory=EnumerationLimits)
    close_bias: float = 0.3
    """Probability weight nudging the walk toward closing services, so
    finite returning runs are produced often."""


class _ActiveTask:
    """Bookkeeping for one active local run."""

    def __init__(self, task: Task, node: RunTreeNode):
        self.task = task
        self.node = node
        self.state: TaskState = node.run.steps[-1].state
        self.opened_in_segment: set[str] = set()
        self.active_children: dict[str, "_ActiveTask"] = {}

    def append(self, state: TaskState, service: labels.ServiceRef) -> None:
        self.node.run.steps.append(Step(state, service))
        self.state = state


@dataclass
class _Move:
    kind: str  # "internal" | "open" | "close_child" | "close_self"
    actor: _ActiveTask
    payload: object = None


class Simulator:
    """Random-walk execution of a HAS over a fixed database instance."""

    def __init__(self, has: HAS, db: DatabaseInstance, config: SimulationConfig | None = None):
        self.has = has
        self.db = db
        self.config = config or SimulationConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------
    def run(self) -> RunTree:
        """Execute one random run prefix and return its tree of local runs."""
        root_inputs = self._choose_root_inputs()
        root_state = initial_state(self.has.root, root_inputs)
        root_run = LocalRun(
            self.has.root,
            root_inputs,
            [Step(root_state, labels.opening(self.has.root.name))],
            complete=False,
        )
        root_node = RunTreeNode(root_run)
        root_active = _ActiveTask(self.has.root, root_node)
        actives: list[_ActiveTask] = [root_active]

        for _ in range(self.config.max_steps):
            moves = self._enabled_moves(actives)
            if not moves:
                break
            move = self._pick(moves)
            self._execute(move, actives)
        for active in actives:
            active.node.run.complete = False
        # mark properly-closed runs complete (they were removed from actives)
        return RunTree(root_node)

    def _choose_root_inputs(self) -> dict[Variable, Value]:
        inputs = tuple(self.has.root.input_variables)
        if not inputs:
            return {}
        options = list(
            enumerate_post_valuations(
                inputs, self.has.precondition, self.db, {}, self.config.limits
            )
        )
        if not options:
            raise RunError("precondition Π is unsatisfiable over this database")
        return self._rng.choice(options)

    # ------------------------------------------------------------------
    def _enabled_moves(self, actives: list[_ActiveTask]) -> list[_Move]:
        moves: list[_Move] = []
        for active in actives:
            task = active.task
            no_active_children = not active.active_children
            if no_active_children:
                for service in task.services:
                    if service.pre.evaluate(self.db, active.state.valuation):
                        moves.append(_Move("internal", active, service))
            for child in task.children:
                if child.name in active.active_children:
                    continue
                if child.name in active.opened_in_segment:
                    continue  # restriction 8
                if child.opening.pre.evaluate(self.db, active.state.valuation):
                    moves.append(_Move("open", active, child))
            for child_active in active.active_children.values():
                if not child_active.active_children and child_active.task.closing.pre.evaluate(
                    self.db, child_active.state.valuation
                ):
                    moves.append(_Move("close_child", active, child_active))
        return moves

    def _pick(self, moves: list[_Move]) -> _Move:
        closing = [m for m in moves if m.kind == "close_child"]
        if closing and self._rng.random() < self.config.close_bias:
            return self._rng.choice(closing)
        return self._rng.choice(moves)

    # ------------------------------------------------------------------
    def _execute(self, move: _Move, actives: list[_ActiveTask]) -> None:
        if move.kind == "internal":
            self._do_internal(move.actor, move.payload)  # type: ignore[arg-type]
        elif move.kind == "open":
            self._do_open(move.actor, move.payload, actives)  # type: ignore[arg-type]
        elif move.kind == "close_child":
            self._do_close_child(move.actor, move.payload, actives)  # type: ignore[arg-type]

    def _do_internal(self, active: _ActiveTask, service) -> None:
        task = active.task
        preserved = {
            v: active.state.valuation[v] for v in task.input_variables
        }
        candidates = []
        for valuation in enumerate_post_valuations(
            task.variables, service.post, self.db, preserved, self.config.limits
        ):
            for adjusted, contents in set_update_results(
                task, service.update, active.state, valuation
            ):
                # retrieval may overwrite s̄^T; re-check input preservation
                # and the post-condition on the adjusted valuation
                if any(adjusted[v] != preserved[v] for v in preserved):
                    continue
                if not service.post.evaluate(self.db, adjusted):
                    continue
                candidates.append(TaskState(adjusted, contents))
                if len(candidates) >= self.config.max_choices_per_step:
                    break
            if len(candidates) >= self.config.max_choices_per_step:
                break
        if not candidates:
            return
        nxt = self._rng.choice(candidates)
        active.append(nxt, labels.internal(task.name, service.name))
        active.opened_in_segment = set()

    def _do_open(self, active: _ActiveTask, child: Task, actives: list[_ActiveTask]) -> None:
        inputs = {
            child_var: active.state.valuation[parent_var]
            for child_var, parent_var in child.opening.input_map.items()
        }
        active.append(active.state, labels.opening(child.name))
        open_index = len(active.node.run.steps) - 1
        child_state = initial_state(child, inputs)
        child_run = LocalRun(
            child, inputs, [Step(child_state, labels.opening(child.name))], complete=False
        )
        child_node = RunTreeNode(child_run)
        active.node.children[open_index] = child_node
        child_active = _ActiveTask(child, child_node)
        active.active_children[child.name] = child_active
        active.opened_in_segment.add(child.name)
        actives.append(child_active)

    def _do_close_child(
        self, parent: _ActiveTask, child: _ActiveTask, actives: list[_ActiveTask]
    ) -> None:
        child_task = child.task
        # child-side: final step σ^c_Tc with unchanged instance
        child.append(child.state, labels.closing(child_task.name))
        child.node.run.complete = True
        # parent-side: overwrite returned variables per restriction (2)
        valuation = dict(parent.state.valuation)
        for parent_var, child_var in child_task.closing.output_map.items():
            old = valuation[parent_var]
            overwritable = parent_var.kind is VarKind.NUMERIC or old is None
            if overwritable:
                valuation[parent_var] = child.state.valuation[child_var]
        parent.append(
            TaskState(valuation, parent.state.set_contents),
            labels.closing(child_task.name),
        )
        del parent.active_children[child_task.name]
        actives.remove(child)

    # ------------------------------------------------------------------
    def sample_trees(self, count: int) -> Iterator[RunTree]:
        """Yield ``count`` independent random run trees."""
        for offset in range(count):
            self._rng = random.Random(self.config.seed + offset)
            yield self.run()


# ----------------------------------------------------------------------
# scripted replay (witness validation)
# ----------------------------------------------------------------------
def replay_root_run(
    has: HAS,
    db: DatabaseInstance,
    steps: list[tuple[labels.ServiceRef, TaskState]],
    complete: bool = False,
) -> LocalRun:
    """Execute a *prescribed* run of the root task over ``db``.

    Unlike :meth:`Simulator.run`, nothing is chosen here: the caller
    supplies the exact (service, state) sequence — typically a
    counterexample materialized by ``repro.witness`` — and this function
    drives it through the concrete semantics, raising
    :class:`~repro.errors.RunError` on the first illegal transition
    (Definitions 8/9 via :func:`~repro.runtime.local_run.validate_local_run`).
    The global precondition Π is checked on the initial instant.  Returns
    the validated :class:`LocalRun` prefix.
    """
    if not steps:
        raise RunError("cannot replay an empty run")
    task = has.root
    first_service, first_state = steps[0]
    inputs = {v: first_state.valuation[v] for v in task.input_variables}
    if not has.precondition.evaluate(db, dict(first_state.valuation)):
        raise RunError("replay: precondition Π fails on the initial instant")
    run = LocalRun(
        task,
        inputs,
        [Step(state, service) for service, state in steps],
        complete=complete,
    )
    validate_local_run(run, db)
    return run
