"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An ill-formed database schema, task schema, or artifact schema."""


class InstanceError(ReproError):
    """A database or artifact instance violating its schema constraints."""


class ConditionError(ReproError):
    """An ill-formed or ill-typed condition / formula."""


class SpecificationError(ReproError):
    """An ill-formed HAS specification (services, hierarchy, wiring)."""


class RestrictionViolation(SpecificationError):
    """A HAS specification violating one of the paper's 8 restrictions.

    Section 6 of the paper shows each restriction is necessary for
    decidability (Theorem 24); the validator reports which one failed.
    """

    def __init__(self, restriction: int, message: str):
        self.restriction = restriction
        super().__init__(f"restriction ({restriction}): {message}")


class RunError(ReproError):
    """An invalid transition or run construction in the concrete semantics."""


class VerificationError(ReproError):
    """The verifier was asked something it cannot decide soundly."""


class BudgetExceeded(VerificationError):
    """A state / depth budget was exhausted before the search completed."""

    def __init__(self, message: str, states_explored: int = 0):
        self.states_explored = states_explored
        super().__init__(message)
