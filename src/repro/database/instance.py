"""Finite database instances satisfying key and inclusion dependencies.

Identifiers are modelled as strings tagged with their relation name so the
domains ``Dom(R.ID)`` of distinct relations are disjoint, as Definition 1
requires.  Numeric attribute values are Python numbers (int / float /
Fraction all accepted; compared by value).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

from repro.database.schema import DatabaseSchema, Relation, AttributeKind
from repro.errors import InstanceError

Numeric = int | float | Fraction


@dataclass(frozen=True)
class Identifier:
    """An element of ``Dom(R.ID)``: a value of the ID domain of relation R."""

    relation: str
    label: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.relation}#{self.label}"


Value = Identifier | Numeric | None
Tuple = tuple[Value, ...]


class DatabaseInstance:
    """A finite instance of a :class:`DatabaseSchema`.

    Tuples are keyed by their ID (key dependency is enforced on insert);
    :meth:`validate` additionally checks all inclusion dependencies.
    """

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self._rows: dict[str, dict[Identifier, Tuple]] = {r.name: {} for r in schema}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, relation: str, *values: Value) -> Identifier:
        """Insert a tuple; the first value is the ID (an Identifier or a
        plain string label that will be tagged with the relation name)."""
        rel = self.schema.relation(relation)
        if len(values) != rel.arity:
            raise InstanceError(
                f"{relation}: expected {rel.arity} values (incl. id), got {len(values)}"
            )
        row = list(values)
        row[0] = self._coerce_id(relation, row[0])
        for offset, attr in enumerate(rel.attributes, start=1):
            row[offset] = self._coerce_value(rel, attr.name, row[offset])
        ident = row[0]
        assert isinstance(ident, Identifier)
        table = self._rows[relation]
        if ident in table:
            raise InstanceError(f"{relation}: duplicate id {ident!r} (key dependency)")
        table[ident] = tuple(row)
        return ident

    def _coerce_id(self, relation: str, value: Value) -> Identifier:
        if isinstance(value, str):
            return Identifier(relation, value)
        if isinstance(value, Identifier):
            if value.relation != relation:
                raise InstanceError(
                    f"id {value!r} belongs to Dom({value.relation}.ID), not {relation}"
                )
            return value
        raise InstanceError(f"{relation}: id must be a string or Identifier, got {value!r}")

    def _coerce_value(self, rel: Relation, attr_name: str, value: Value) -> Value:
        attr = rel.attribute(attr_name)
        if attr.kind is AttributeKind.NUMERIC:
            if not isinstance(value, (int, float, Fraction)) or isinstance(value, bool):
                raise InstanceError(
                    f"{rel.name}.{attr_name}: numeric attribute needs a number, got {value!r}"
                )
            return value
        # foreign key: Identifier of the referenced relation, or a string label
        assert attr.kind is AttributeKind.FOREIGN_KEY
        if isinstance(value, str):
            return Identifier(attr.references, value)
        if isinstance(value, Identifier):
            if value.relation != attr.references:
                raise InstanceError(
                    f"{rel.name}.{attr_name}: expects id of {attr.references!r}, "
                    f"got id of {value.relation!r}"
                )
            return value
        raise InstanceError(
            f"{rel.name}.{attr_name}: foreign key needs an id, got {value!r}"
        )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def rows(self, relation: str) -> Iterable[Tuple]:
        return self._rows[relation].values()

    def lookup(self, ident: Identifier) -> Tuple | None:
        """Tuple with the given ID, or None."""
        table = self._rows.get(ident.relation)
        if table is None:
            return None
        return table.get(ident)

    def attribute_of(self, ident: Identifier, attribute: str) -> Value | None:
        """Value of ``attribute`` in the tuple identified by ``ident``.

        Returns None when the tuple does not exist — the foreign-key
        navigation semantics of conditions treat that as undefined.
        """
        row = self.lookup(ident)
        if row is None:
            return None
        rel = self.schema.relation(ident.relation)
        names = rel.attribute_names
        return row[names.index(attribute)]

    def navigate(self, ident: Identifier, path: Iterable[str]) -> Value | None:
        """Follow a sequence of attributes (FKs then possibly one numeric)."""
        current: Value | None = ident
        for attr in path:
            if not isinstance(current, Identifier):
                return None
            current = self.attribute_of(current, attr)
        return current

    def size(self, relation: str | None = None) -> int:
        if relation is not None:
            return len(self._rows[relation])
        return sum(len(table) for table in self._rows.values())

    def active_domain(self) -> set[Value]:
        """All ids and numeric values occurring in the instance."""
        domain: set[Value] = set()
        for table in self._rows.values():
            for row in table.values():
                domain.update(row)
        return domain

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all inclusion dependencies ``R[F] ⊆ R_F[ID]``."""
        for rel in self.schema:
            names = rel.attribute_names
            for row in self.rows(rel.name):
                for fk in rel.foreign_keys:
                    value = row[names.index(fk.name)]
                    assert isinstance(value, Identifier)
                    if self.lookup(value) is None:
                        raise InstanceError(
                            f"{rel.name}.{fk.name} = {value!r} dangles "
                            f"(inclusion dependency violated)"
                        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(f"{name}:{len(table)}" for name, table in self._rows.items())
        return f"DatabaseInstance({sizes})"
