"""Relational substrate of HAS: schemas with keys and foreign keys.

Implements Definition 1 of the paper: every relation has a key attribute
``ID``, foreign-key attributes referencing other relations' IDs, and numeric
non-key attributes.  The foreign-key graph classifies schemas as *acyclic*,
*linearly-cyclic* or *cyclic*, the parameter driving the complexity results
of Tables 1 and 2.
"""

from repro.database.schema import (
    Attribute,
    AttributeKind,
    DatabaseSchema,
    Relation,
)
from repro.database.fkgraph import ForeignKeyGraph, SchemaClass
from repro.database.instance import DatabaseInstance, Tuple

__all__ = [
    "Attribute",
    "AttributeKind",
    "DatabaseSchema",
    "Relation",
    "ForeignKeyGraph",
    "SchemaClass",
    "DatabaseInstance",
    "Tuple",
]
