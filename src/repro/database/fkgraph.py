"""The foreign-key graph FK and the schema classification of Definition 1.

The schema class (acyclic / linearly-cyclic / cyclic) is the parameter that
determines which column of Tables 1 and 2 applies.  This module also
implements ``F(n)`` — the maximum number of distinct FK paths of length at
most ``n`` from any relation — used to compute the navigation depth ``h(T)``
(Section 4.1) and analysed per class in Appendix C.3 (Figure 4).
"""

from __future__ import annotations

import enum
from functools import lru_cache

import networkx as nx

from repro.database.schema import DatabaseSchema


class SchemaClass(enum.Enum):
    """The three schema classes of the paper, in increasing generality."""

    ACYCLIC = "acyclic"
    LINEARLY_CYCLIC = "linearly-cyclic"
    CYCLIC = "cyclic"


class ForeignKeyGraph:
    """Labeled graph whose nodes are relations and edges are foreign keys.

    There is an edge ``Ri -> Rj`` labeled ``F`` whenever relation ``Ri`` has
    a foreign-key attribute ``F`` referencing ``Rj``.
    """

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        graph = nx.MultiDiGraph()
        for rel in schema:
            graph.add_node(rel.name)
            for fk in rel.foreign_keys:
                graph.add_edge(rel.name, fk.references, label=fk.name)
        self.graph = graph

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def classify(self) -> SchemaClass:
        """Classify the schema per Definition 1.

        *acyclic*: no cycles at all; *linearly-cyclic*: every relation lies
        on at most one simple cycle; *cyclic*: anything else.
        """
        if nx.is_directed_acyclic_graph(nx.DiGraph(self.graph)):
            # Self-loops and parallel FK edges forming 2-cycles are caught
            # below; a DAG view without them is genuinely acyclic.
            if not any(u == v for u, v in self.graph.edges()):
                if not self._has_parallel_cycle():
                    return SchemaClass.ACYCLIC
        counts = self._simple_cycle_membership_counts()
        if all(count <= 1 for count in counts.values()):
            return SchemaClass.LINEARLY_CYCLIC
        return SchemaClass.CYCLIC

    def _has_parallel_cycle(self) -> bool:
        """Two parallel FK edges between the same pair never form a cycle
        by themselves (both point the same way), so this is always False;
        kept for clarity of the classification logic."""
        return False

    def _simple_cycle_membership_counts(self) -> dict[str, int]:
        """Number of distinct simple cycles through each relation.

        Parallel edges with distinct labels count as distinct cycles, since
        they induce distinct FK navigation loops.
        """
        counts: dict[str, int] = {name: 0 for name in self.graph.nodes}
        # Work on the multigraph: enumerate simple cycles of the underlying
        # DiGraph, then multiply by the number of parallel-edge choices.
        digraph = nx.DiGraph(self.graph)
        for cycle in nx.simple_cycles(digraph):
            multiplicity = 1
            for i, node in enumerate(cycle):
                succ = cycle[(i + 1) % len(cycle)]
                multiplicity *= self.graph.number_of_edges(node, succ)
            for node in cycle:
                counts[node] += multiplicity
        return counts

    @property
    def is_acyclic(self) -> bool:
        return self.classify() is SchemaClass.ACYCLIC

    # ------------------------------------------------------------------
    # path counting: F(n) and h(T)
    # ------------------------------------------------------------------
    def out_edges(self, relation: str) -> list[tuple[str, str]]:
        """Outgoing FK edges of ``relation`` as (label, target) pairs."""
        return [
            (data["label"], target)
            for _, target, data in self.graph.out_edges(relation, data=True)
        ]

    def path_count(self, relation: str, length: int) -> int:
        """Number of distinct FK paths of length at most ``length`` from
        ``relation`` (the empty path included).

        Iterative dynamic program over the length — ``h(T)`` computations
        on cyclic schemas pass hyperexponentially large lengths, far beyond
        any recursion limit.
        """
        if length <= 0:
            return 1
        # counts[r] = number of paths of length ≤ current from r
        counts: dict[str, int] = {name: 1 for name in self.graph.nodes}
        out = {
            name: [target for _label, target in self.out_edges(name)]
            for name in self.graph.nodes
        }
        for _ in range(length):
            nxt = {
                name: 1 + sum(counts[target] for target in out[name])
                for name in counts
            }
            if nxt == counts:  # saturated (acyclic reach exhausted)
                break
            counts = nxt
        return counts[relation]

    def max_path_count(self, length: int) -> int:
        """``F(n)`` of Section 4.1: max over relations of path_count."""
        return max((self.path_count(r, length) for r in self.graph.nodes), default=1)

    def longest_simple_path_length(self) -> int:
        """Length of the longest simple FK path (finite iff acyclic).

        For acyclic schemas this bounds the length of *any* FK navigation,
        which is why navigation sets stay small there (Appendix C.3).
        """
        digraph = nx.DiGraph(self.graph)
        if not nx.is_directed_acyclic_graph(digraph):
            raise ValueError("longest path is unbounded on cyclic FK graphs")
        longest = 0
        # Simple DP over reverse topological order.
        depth: dict[str, int] = {}
        for node in list(nx.topological_sort(digraph))[::-1]:
            succs = list(digraph.successors(node))
            depth[node] = 0 if not succs else 1 + max(depth[s] for s in succs)
            longest = max(longest, depth[node])
        return longest


def navigation_depth(
    fk_graph: ForeignKeyGraph,
    num_variables: int,
    child_depths: tuple[int, ...] = (),
) -> int:
    """The depth bound ``h(T)`` of Section 4.1.

    ``h(T) = 1 + |x̄^T| · F(δ)`` where ``δ = 1`` for leaf tasks and
    ``δ = max h(T_c)`` over children otherwise.
    """
    delta = max(child_depths) if child_depths else 1
    return 1 + num_variables * fk_graph.max_path_count(delta)
