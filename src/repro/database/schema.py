"""Database schemas per Definition 1 of the paper.

A relation ``R(ID, A1..An, F1..Fm)`` has:

* a key attribute ``ID`` whose domain is an uninterpreted countable set of
  identifiers disjoint per relation,
* numeric non-key attributes ``Ai`` with domain the reals, and
* foreign-key attributes ``Fj``, each referencing the ``ID`` of a relation,
  with inclusion dependency ``R[Fj] ⊆ R_Fj[ID]``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError

ID_ATTRIBUTE = "id"


class AttributeKind(enum.Enum):
    """The three attribute kinds of Definition 1."""

    KEY = "key"
    NUMERIC = "numeric"
    FOREIGN_KEY = "foreign_key"


@dataclass(frozen=True)
class Attribute:
    """A single attribute of a relation.

    ``references`` is the name of the referenced relation for foreign keys
    and ``None`` otherwise.
    """

    name: str
    kind: AttributeKind
    references: str | None = None

    def __post_init__(self) -> None:
        if self.kind is AttributeKind.FOREIGN_KEY and not self.references:
            raise SchemaError(f"foreign key {self.name!r} must reference a relation")
        if self.kind is not AttributeKind.FOREIGN_KEY and self.references:
            raise SchemaError(f"attribute {self.name!r} of kind {self.kind.value} cannot reference")

    @property
    def is_id_valued(self) -> bool:
        """True when values of this attribute are identifiers (key or FK)."""
        return self.kind in (AttributeKind.KEY, AttributeKind.FOREIGN_KEY)


@dataclass(frozen=True)
class Relation:
    """A relation symbol with its attribute sequence.

    The key attribute ``ID`` is always implicitly present and always first;
    callers list only the non-key attributes.
    """

    name: str
    attributes: tuple[Attribute, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid relation name {self.name!r}")
        seen: set[str] = {ID_ATTRIBUTE}
        for attr in self.attributes:
            if attr.kind is AttributeKind.KEY:
                raise SchemaError(
                    f"relation {self.name!r}: the key attribute is implicit; "
                    f"do not declare {attr.name!r} as KEY"
                )
            if attr.name in seen:
                raise SchemaError(f"relation {self.name!r}: duplicate attribute {attr.name!r}")
            seen.add(attr.name)

    @property
    def arity(self) -> int:
        """Number of attributes including the implicit ID."""
        return 1 + len(self.attributes)

    @property
    def numeric_attributes(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.kind is AttributeKind.NUMERIC)

    @property
    def foreign_keys(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.kind is AttributeKind.FOREIGN_KEY)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name (including the implicit ID)."""
        if name == ID_ATTRIBUTE:
            return Attribute(ID_ATTRIBUTE, AttributeKind.KEY)
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return name == ID_ATTRIBUTE or any(a.name == name for a in self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """All attribute names, ID first, in declaration order."""
        return (ID_ATTRIBUTE,) + tuple(a.name for a in self.attributes)


def numeric(name: str) -> Attribute:
    """Convenience constructor for a numeric attribute."""
    return Attribute(name, AttributeKind.NUMERIC)


def foreign_key(name: str, references: str) -> Attribute:
    """Convenience constructor for a foreign-key attribute."""
    return Attribute(name, AttributeKind.FOREIGN_KEY, references)


@dataclass(frozen=True)
class DatabaseSchema:
    """A finite set of relations with resolved foreign-key references."""

    relations: tuple[Relation, ...] = ()
    _by_name: dict[str, Relation] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_name: dict[str, Relation] = {}
        for rel in self.relations:
            if rel.name in by_name:
                raise SchemaError(f"duplicate relation {rel.name!r}")
            by_name[rel.name] = rel
        for rel in self.relations:
            for fk in rel.foreign_keys:
                if fk.references not in by_name:
                    raise SchemaError(
                        f"relation {rel.name!r}: foreign key {fk.name!r} references "
                        f"unknown relation {fk.references!r}"
                    )
        object.__setattr__(self, "_by_name", by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def relation(self, name: str) -> Relation:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.relations)

    @property
    def max_arity(self) -> int:
        """Maximum relation arity — the constant ``a`` of Appendix C.3."""
        return max((r.arity for r in self.relations), default=0)
