"""The symbolic constraint store: a lazily-refined partial isomorphism type.

A store records, over a set of :class:`Node` tokens,

* the current *binding* of each artifact variable to a value node (rebound
  when the variable is overwritten — by internal services, child returns,
  or set retrievals);
* an equivalence (union-find) over ID-sorted nodes with congruence: equal
  ID nodes share attribute children — this is the key-dependency / FD
  closure of Definition 15;
* per ID class: null status (true / false / unknown), the anchoring
  relation (the ``x_R`` of navigation sets), or a set of *excluded*
  anchors;
* disequalities between ID classes;
* linear constraints over numeric nodes, decided by Fourier–Motzkin;
* *pins*: labeled references to nodes that must stay identifiable (the
  input snapshots of currently-open child tasks).

A consistent store denotes a non-empty set of total isomorphism types —
unknown relationships can be resolved either way over the infinite ID
domains / the reals — and conditions are applied by case-splitting on
exactly the relationships they test (the VERIFAS-style refinement of the
paper's total types).

Stores are the unit of memoization throughout the verifier:
:meth:`ConstraintStore.canonical_key` renders a store as a nested tuple
invariant under internal node renaming, cached per store behind a dirty
bit (every mutator invalidates) with the expensive per-constraint
canonicalization memoized globally and the finished keys interned — see
docs/performance.md for the cache design and its invariants.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.arith.constraints import Constraint, Rel
from repro.arith.fm import is_satisfiable, project_components
from repro.arith.linexpr import LinExpr
from repro.fuzz.coverage import COVERAGE
from repro.perf.counters import COUNTERS
from repro.perf.phases import PHASES
from repro.database.schema import AttributeKind, DatabaseSchema
from repro.logic.terms import Variable, VarKind
from repro.symbolic.nodes import (
    NULL,
    ConstNode,
    NavNode,
    Node,
    Sort,
    ValueNode,
    ZERO,
)

PinLabel = tuple

# ----------------------------------------------------------------------
# canonical-key memoization (module-global, shared across stores)
# ----------------------------------------------------------------------
# Interning table for canonical-key components: equal keys become the
# *same* tuple object, so the dict lookups that consume them (state
# interning, summary memos, condition-branch dedup) compare by identity
# on the happy path instead of walking nested tuples.
_KEY_INTERN: dict = {}
_KEY_INTERN_LIMIT = 200_000

# Per-(constraint, label-assignment) canonical-form strings: renaming a
# constraint onto access-path labels and canonicalizing it is the single
# hottest step of canonical_key, and the same (constraint, labels) pair
# recurs across thousands of sibling stores.
_CONSTRAINT_CANON_CACHE: dict = {}
_CONSTRAINT_CANON_CACHE_LIMIT = 400_000


def _intern_key(value: tuple) -> tuple:
    if len(_KEY_INTERN) >= _KEY_INTERN_LIMIT:
        _KEY_INTERN.clear()
    return _KEY_INTERN.setdefault(value, value)


def clear_canonical_caches() -> None:
    """Drop the canonical-key memos (tests, benchmarks)."""
    _KEY_INTERN.clear()
    _CONSTRAINT_CANON_CACHE.clear()


def _constraint_canon_repr(constraint: Constraint, label_of: Mapping) -> str:
    """``repr(constraint.rename(label_of).canonical())``, memoized.

    The memo key is the constraint plus the label assignment restricted
    to the unknowns it actually mentions — everything the rename reads
    (unknowns absent from ``label_of`` rename to themselves, and are
    covered by the constraint's own identity).
    """
    labels = frozenset(
        (unknown, label_of[unknown])
        for unknown in constraint.unknowns
        if unknown in label_of
    )
    key = (constraint, labels)
    cached = _CONSTRAINT_CANON_CACHE.get(key)
    if cached is not None:
        COUNTERS.constraint_canon_hits += 1
        return cached
    COUNTERS.constraint_canon_misses += 1
    rendered = repr(constraint.rename(label_of).canonical())
    if len(_CONSTRAINT_CANON_CACHE) >= _CONSTRAINT_CANON_CACHE_LIMIT:
        _CONSTRAINT_CANON_CACHE.clear()
    _CONSTRAINT_CANON_CACHE[key] = rendered
    return rendered


class Inconsistent(Exception):
    """Raised when an assertion contradicts the store."""


class ConstraintStore:
    """Mutable partial isomorphism type.  ``copy()`` before branching."""

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self._serial = 0
        self._binding: dict[Variable, Node] = {}
        self._pins: dict[PinLabel, Node] = {}
        self._parent: dict[Node, Node] = {}
        self._rank: dict[Node, int] = {}
        self._null: dict[Node, bool | None] = {}
        self._anchor: dict[Node, str | None] = {}
        self._excluded: dict[Node, frozenset[str]] = {}   # sparse
        self._children: dict[Node, dict[str, Node]] = {}  # sparse
        self._diseqs: set[frozenset[Node]] = set()
        self._numeric: list[Constraint] = []
        self._numeric_dirty = False
        self._numeric_sat = True
        self.approximate = False
        self._canon_cache: tuple | None = None
        self._register(NULL, Sort.ID)
        self._null[NULL] = True
        self._register(ZERO, Sort.NUMERIC)

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def fresh(self, sort: Sort) -> Node:
        """A brand-new anonymous value node of the given sort — the
        symbolic analogue of picking an unconstrained element of the ID
        domain (Def. 14's infinite domains) or of ℝ."""
        self._canon_cache = None
        self._serial += 1
        node = ValueNode(self._serial, sort)
        self._register(node, sort)
        return node

    def const(self, value: Fraction | int) -> Node:
        """The (interned) node denoting a numeric constant."""
        node = ConstNode(Fraction(value))
        if node not in self._parent:
            self._register(node, Sort.NUMERIC)
        return node

    def _register(self, node: Node, sort: Sort) -> None:
        self._parent[node] = node
        self._rank[node] = 0
        self._null[node] = None if sort is Sort.ID else False
        self._anchor[node] = None
        if sort is Sort.NUMERIC:
            self._null[node] = False

    def sort_of(self, node: Node) -> Sort:
        """ID or NUMERIC; navigation nodes take their sort from the
        schema attribute they traverse."""
        if isinstance(node, ValueNode):
            return node.sort
        if isinstance(node, ConstNode):
            return Sort.NUMERIC
        if node is NULL:
            return Sort.ID
        if isinstance(node, NavNode):
            base_root = self.find(node.base)
            relation_name = self._anchor[base_root]
            assert relation_name is not None
            attribute = self.schema.relation(relation_name).attribute(node.attr)
            return (
                Sort.NUMERIC
                if attribute.kind is AttributeKind.NUMERIC
                else Sort.ID
            )
        raise TypeError(f"unknown node {node!r}")

    def find(self, node: Node) -> Node:
        """Union-find root of the node's equality class, with path
        compression.  Classes realize the equality type of Definition 15
        restricted to the facts asserted so far."""
        root = node
        while self._parent[root] is not root:
            root = self._parent[root]
        while self._parent[node] is not root:
            self._parent[node], node = root, self._parent[node]
        return root

    # ------------------------------------------------------------------
    # variable bindings and pins
    # ------------------------------------------------------------------
    def node_of(self, variable: Variable) -> Node:
        """Current value node of a variable (created fresh on first use)."""
        node = self._binding.get(variable)
        if node is None:
            sort = Sort.ID if variable.kind is VarKind.ID else Sort.NUMERIC
            node = self.fresh(sort)
            self._binding[variable] = node
        return self.find(node)

    def bind(self, variable: Variable, node: Node) -> None:
        """Point the variable at the node's class (overwrite semantics of
        service transitions and child returns — Defs. 5–6)."""
        self._canon_cache = None
        self._binding[variable] = self.find(node)

    def rebind_fresh(self, variable: Variable) -> Node:
        """Bind the variable to a brand-new anonymous value (post-condition
        variables range over fresh values before refinement)."""
        self._canon_cache = None
        sort = Sort.ID if variable.kind is VarKind.ID else Sort.NUMERIC
        node = self.fresh(sort)
        self._binding[variable] = node
        return node

    def bound_variables(self) -> tuple[Variable, ...]:
        return tuple(self._binding)

    def pin(self, label: PinLabel, node: Node) -> None:
        self._canon_cache = None
        self._pins[label] = self.find(node)

    def unpin_prefix(self, prefix: PinLabel) -> None:
        """Remove all pins whose label starts with ``prefix``."""
        self._canon_cache = None
        self._pins = {
            label: node
            for label, node in self._pins.items()
            if label[: len(prefix)] != tuple(prefix)
        }

    def pinned(self, label: PinLabel) -> Node | None:
        node = self._pins.get(label)
        return self.find(node) if node is not None else None

    def pins(self) -> dict[PinLabel, Node]:
        return {label: self.find(node) for label, node in self._pins.items()}

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def nav(self, base: Node, attr: str) -> Node:
        """The node for ``base.attr``; requires the base class anchored."""
        base_root = self.find(base)
        self.assert_not_null(base_root)
        relation_name = self._anchor[self.find(base_root)]
        if relation_name is None:
            raise Inconsistent(f"navigation from unanchored node {base!r}")
        base_root = self.find(base_root)
        relation = self.schema.relation(relation_name)
        attribute = relation.attribute(attr)
        existing = self._children.get(base_root, {}).get(attr)
        if existing is not None:
            return self.find(existing)
        node = NavNode(base_root, attr)
        sort = (
            Sort.NUMERIC if attribute.kind is AttributeKind.NUMERIC else Sort.ID
        )
        self._register(node, sort)
        if sort is Sort.ID:
            self._null[node] = False  # inclusion dependency: FK targets exist
            assert attribute.references is not None
            self._anchor[node] = attribute.references
        self._children.setdefault(base_root, {})[attr] = node
        return node

    # ------------------------------------------------------------------
    # assertions
    # ------------------------------------------------------------------
    def assert_null(self, node: Node) -> None:
        """Force the class to the null value (merging it with NULL's
        class); inconsistent with anchoring or navigation — R(null, …) is
        false and null has no attributes (Section 2)."""
        self._canon_cache = None
        root = self.find(node)
        if self.sort_of(root) is not Sort.ID:
            raise Inconsistent(f"{node!r} is numeric, cannot be null")
        if self._null[root] is False:
            raise Inconsistent(f"{node!r} is known non-null")
        if self._anchor[root] is not None or self._children.get(root):
            raise Inconsistent(f"{node!r} is anchored/navigated, cannot be null")
        self._null[root] = True
        if root is not self.find(NULL):
            self._union(root, self.find(NULL))

    def assert_not_null(self, node: Node) -> None:
        """Record that the class holds a real identifier (no-op for
        numerics, which are never null)."""
        self._canon_cache = None
        root = self.find(node)
        if self.sort_of(root) is not Sort.ID:
            return
        if self._null[root] is True:
            raise Inconsistent(f"{node!r} is known null")
        if self._null[root] is None:
            self._null[root] = False
            self._diseqs.add(frozenset({root, self.find(NULL)}))

    def assert_anchor(self, node: Node, relation: str) -> None:
        """Anchor the class to a relation's ID domain (the ``x_R`` of
        §4.1's navigation sets); ID domains are pairwise disjoint, so a
        second, different anchor is inconsistent."""
        self._canon_cache = None
        self.assert_not_null(node)
        root = self.find(node)
        current = self._anchor[root]
        if current is not None:
            if current != relation:
                raise Inconsistent(
                    f"{node!r} anchored to {current!r}, cannot be {relation!r}"
                )
            return
        if relation in self._excluded.get(root, frozenset()):
            raise Inconsistent(f"{node!r} excludes anchor {relation!r}")
        self._anchor[root] = relation

    def exclude_anchor(self, node: Node, relation: str) -> None:
        """Record that the class is *not* from a relation's ID domain
        (the negative-relation-atom branches of condition application);
        a non-null class excluded from every domain is inconsistent."""
        self._canon_cache = None
        root = self.find(node)
        if self._anchor[root] == relation:
            raise Inconsistent(f"{node!r} is anchored to {relation!r}")
        self._excluded[root] = self._excluded.get(root, frozenset()) | {relation}
        if self._null[root] is False and self._excluded.get(root, frozenset()) >= set(
            self.schema.names
        ):
            raise Inconsistent(f"{node!r} excluded from every ID domain")

    def assert_eq(self, a: Node, b: Node) -> None:
        """Merge the two classes (ID sort: union with congruence over
        navigation children, Definition 15's FD closure; numeric sort:
        recorded as a linear equality instead — numeric tokens are never
        unioned, keeping stored constraints canonical)."""
        self._canon_cache = None
        ra, rb = self.find(a), self.find(b)
        if ra is rb:
            return
        sa, sb = self.sort_of(ra), self.sort_of(rb)
        if sa is not sb:
            raise Inconsistent(f"sort mismatch: {a!r} vs {b!r}")
        if sa is Sort.NUMERIC:
            self.add_constraint(Constraint(self._lin(ra) - self._lin(rb), Rel.EQ))
            return
        if frozenset({ra, rb}) in self._diseqs:
            raise Inconsistent(f"{a!r} and {b!r} are known unequal")
        null_root = self.find(NULL)
        if ra is null_root:
            self.assert_null(rb)
            return
        if rb is null_root:
            self.assert_null(ra)
            return
        self._union(ra, rb)

    def assert_neq(self, a: Node, b: Node) -> None:
        """Record a disequality (ID sort) or a linear ``≠`` constraint
        (numeric sort); immediately inconsistent on a merged class."""
        self._canon_cache = None
        ra, rb = self.find(a), self.find(b)
        sa, sb = self.sort_of(ra), self.sort_of(rb)
        if sa is not sb:
            return  # never equal anyway
        if sa is Sort.NUMERIC:
            self.add_constraint(Constraint(self._lin(ra) - self._lin(rb), Rel.NE))
            return
        if ra is rb:
            raise Inconsistent(f"{a!r} and {b!r} are known equal")
        null_root = self.find(NULL)
        if ra is null_root:
            self.assert_not_null(rb)
            return
        if rb is null_root:
            self.assert_not_null(ra)
            return
        self._diseqs.add(frozenset({ra, rb}))

    def _union(self, ra: Node, rb: Node) -> None:
        null_a, null_b = self._null[ra], self._null[rb]
        if (null_a is True and null_b is False) or (null_a is False and null_b is True):
            raise Inconsistent("null merged with non-null")
        anchor_a, anchor_b = self._anchor[ra], self._anchor[rb]
        if anchor_a and anchor_b and anchor_a != anchor_b:
            raise Inconsistent(f"anchor conflict {anchor_a!r} vs {anchor_b!r}")
        merged_anchor = anchor_a or anchor_b
        merged_excluded = self._excluded.get(ra, frozenset()) | self._excluded.get(rb, frozenset())
        if merged_anchor and merged_anchor in merged_excluded:
            raise Inconsistent(f"anchor {merged_anchor!r} is excluded")
        merged_null = null_a if null_a is not None else null_b
        if merged_null is True and (
            merged_anchor or self._children.get(ra) or self._children.get(rb)
        ):
            raise Inconsistent("null class cannot be anchored / navigated")
        if merged_null is False and merged_excluded >= set(self.schema.names):
            raise Inconsistent("class excluded from every ID domain")
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._null[ra] = merged_null
        self._anchor[ra] = merged_anchor
        if merged_excluded:
            self._excluded[ra] = merged_excluded
        new_diseqs: set[frozenset[Node]] = set()
        for pair in self._diseqs:
            renamed = frozenset(self.find(n) for n in pair)
            if len(renamed) == 1:
                raise Inconsistent("union contradicts a disequality")
            new_diseqs.add(renamed)
        self._diseqs = new_diseqs
        children_a = self._children.setdefault(ra, {})
        children_b = self._children.pop(rb, {})
        pending: list[tuple[Node, Node]] = []
        for attr, child_b in children_b.items():
            child_a = children_a.get(attr)
            if child_a is None:
                children_a[attr] = child_b
            else:
                pending.append((child_a, child_b))
        for child_a, child_b in pending:
            self.assert_eq(child_a, child_b)

    # ------------------------------------------------------------------
    # numeric constraints
    # ------------------------------------------------------------------
    def _lin(self, node: Node) -> LinExpr:
        root = self.find(node)
        if isinstance(root, ConstNode):
            return LinExpr({}, root.value)
        return LinExpr({root: 1})

    def add_constraint(self, constraint: Constraint) -> None:
        """Record a linear constraint; satisfiability is checked lazily at
        the next :meth:`is_consistent` / :meth:`equal` query."""
        self._canon_cache = None
        self._numeric.append(constraint)
        self._numeric_dirty = True

    def add_linear(self, expr: LinExpr, rel: Rel) -> None:
        """Add ``expr rel 0`` where unknowns are (possibly stale) nodes."""
        mapping: dict[Node, Fraction] = {}
        constant = expr.constant
        for unknown, coeff in expr.coeffs.items():
            assert isinstance(unknown, Node)
            root = self.find(unknown)
            if isinstance(root, ConstNode):
                constant += coeff * root.value
            else:
                mapping[root] = mapping.get(root, Fraction(0)) + coeff
        self.add_constraint(Constraint(LinExpr(mapping, constant), rel))

    def numeric_constraints(self) -> list[Constraint]:
        # numeric tokens are never unioned (numeric equalities are linear
        # constraints, and congruence merges of numeric NavNode children
        # also go through constraints), so stored constraints stay canonical
        return list(self._numeric)

    def _numeric_consistent(self) -> bool:
        if self._numeric_dirty:
            self._numeric_sat = is_satisfiable(self._numeric)
            self._numeric_dirty = False
        return self._numeric_sat

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def equal(self, a: Node, b: Node) -> bool | None:
        """Definitely-equal / definitely-unequal / unknown (None)."""
        ra, rb = self.find(a), self.find(b)
        sa, sb = self.sort_of(ra), self.sort_of(rb)
        if sa is not sb:
            return False
        if sa is Sort.NUMERIC:
            delta = self._lin(ra) - self._lin(rb)
            if delta.is_constant:
                return delta.constant == 0
            canon = self.numeric_constraints()
            if not is_satisfiable(canon + [Constraint(delta, Rel.NE)]):
                return True
            if not is_satisfiable(canon + [Constraint(delta, Rel.EQ)]):
                return False
            return None
        if ra is rb:
            return True
        if frozenset({ra, rb}) in self._diseqs:
            return False
        anchor_a, anchor_b = self._anchor[ra], self._anchor[rb]
        if anchor_a and anchor_b and anchor_a != anchor_b:
            return False  # disjoint ID domains
        if anchor_a and anchor_a in self._excluded.get(rb, frozenset()):
            return False
        if anchor_b and anchor_b in self._excluded.get(ra, frozenset()):
            return False
        null_a, null_b = self._null[ra], self._null[rb]
        if (null_a is True and null_b is False) or (null_a is False and null_b is True):
            return False
        if (null_a is True and anchor_b) or (null_b is True and anchor_a):
            return False
        return None

    def null_status(self, node: Node) -> bool | None:
        """True = known null, False = known non-null, None = unresolved."""
        return self._null[self.find(node)]

    def anchor_of(self, node: Node) -> str | None:
        """The relation whose ID domain the class is known to inhabit."""
        return self._anchor[self.find(node)]

    def excluded_anchors(self, node: Node) -> frozenset[str]:
        """Relations whose ID domains the class is known *not* to inhabit."""
        return self._excluded.get(self.find(node), frozenset())

    def child_of(self, node: Node, attr: str) -> Node | None:
        """The already-materialized navigation child, if any (never
        creates one — use :meth:`nav` for that)."""
        child = self._children.get(self.find(node), {}).get(attr)
        return self.find(child) if child is not None else None

    def is_consistent(self) -> bool:
        """Whether the store denotes at least one total isomorphism type.

        ID-sorted facts are kept consistent eagerly (assertions raise
        :class:`Inconsistent` on contradiction), so only the lazily
        collected numeric constraints need deciding — Fourier–Motzkin
        behind a dirty bit (Section 5's decidable arithmetic check)."""
        try:
            return self._numeric_consistent()
        except Inconsistent:
            return False

    # ------------------------------------------------------------------
    # read-only iteration (witness concretization and diagnostics)
    # ------------------------------------------------------------------
    def class_roots(self) -> tuple[Node, ...]:
        """Every distinct class root, sorted by repr (deterministic)."""
        return tuple(sorted({self.find(node) for node in self._parent}, key=repr))

    def navigation_children(self, node: Node) -> tuple[tuple[str, Node], ...]:
        """The ``(attr, child)`` navigation edges of the node's class,
        attribute-sorted."""
        children = self._children.get(self.find(node), {})
        return tuple(sorted(children.items()))

    def disequalities(self) -> tuple[frozenset[Node], ...]:
        """The recorded disequalities, as root pairs."""
        return tuple(
            frozenset(self.find(node) for node in pair) for pair in self._diseqs
        )

    def binding_of(self, variable: Variable) -> Node | None:
        """The variable's current value node as stored (not canonicalized;
        callers needing the class root apply :meth:`find`), or None when
        the variable is unbound."""
        return self._binding.get(variable)

    def allowed_anchors(self, node: Node) -> tuple[str, ...]:
        """Relations this class may be anchored to."""
        root = self.find(node)
        current = self._anchor[root]
        if current:
            return (current,)
        excluded = self._excluded.get(root, frozenset())
        return tuple(
            name for name in self.schema.names if name not in excluded
        )

    # ------------------------------------------------------------------
    # copying / restriction / canonical form
    # ------------------------------------------------------------------
    def copy(self) -> "ConstraintStore":
        """An independent mutable clone (branch before case-splitting);
        shares nothing mutable with the original, and keeps the cached
        canonical key (equal content ⇒ equal key)."""
        clone = ConstraintStore.__new__(ConstraintStore)
        clone.schema = self.schema
        clone._serial = self._serial
        clone._binding = dict(self._binding)
        clone._pins = dict(self._pins)
        clone._parent = dict(self._parent)
        clone._rank = dict(self._rank)
        clone._null = dict(self._null)
        clone._anchor = dict(self._anchor)
        clone._excluded = dict(self._excluded)
        clone._children = {root: dict(kids) for root, kids in self._children.items() if kids}
        clone._diseqs = set(self._diseqs)
        clone._numeric = list(self._numeric)
        clone._numeric_dirty = self._numeric_dirty
        clone._numeric_sat = self._numeric_sat
        clone.approximate = self.approximate
        clone._canon_cache = self._canon_cache
        return clone

    def live_roots(self) -> set[Node]:
        """Class roots reachable from bindings, pins, and constants."""
        roots: set[Node] = {self.find(NULL), self.find(ZERO)}
        frontier: list[Node] = []
        for node in list(self._binding.values()) + list(self._pins.values()):
            root = self.find(node)
            if root not in roots:
                roots.add(root)
                frontier.append(root)
        for node in list(self._parent):
            if isinstance(node, ConstNode):
                roots.add(self.find(node))
        while frontier:
            root = frontier.pop()
            for child in self._children.get(root, {}).values():
                child_root = self.find(child)
                if child_root not in roots:
                    roots.add(child_root)
                    frontier.append(child_root)
        return roots

    def restrict(self, keep: Iterable[Variable]) -> "ConstraintStore":
        """A new store keeping only facts about ``keep`` variables (and
        pins) — the τ'|x̄in projection of symbolic transitions.

        Numeric constraints are Fourier–Motzkin-projected onto the live
        numeric tokens; ID facts among dead classes are dropped.
        """
        keep_set = set(keep)
        clone = self.copy()
        clone._binding = {
            v: n for v, n in clone._binding.items() if v in keep_set
        }
        clone._pins = {}
        live = clone.live_roots()
        clone._diseqs = {
            pair
            for pair in clone._diseqs
            if all(clone.find(n) in live for n in pair)
        }
        live_tokens = {
            root for root in live if clone.sort_of(root) is Sort.NUMERIC
        }
        canon = clone.numeric_constraints()
        kept, exact = project_components(canon, live_tokens)
        clone._numeric = kept
        clone._numeric_dirty = True
        # Rebuild from scratch: drops every dead node, keeping store sizes
        # bounded by the live structure (stores otherwise snowball along
        # runs and copying them dominates the search).
        fresh = ConstraintStore(self.schema)
        fresh.absorb(clone, {v: v for v in clone._binding})
        fresh.approximate = self.approximate or not exact
        return fresh

    def absorb(
        self,
        other: "ConstraintStore",
        var_translation: Mapping[Variable, "Variable | Node"],
    ) -> dict[Variable, Node]:
        """Replay another store's facts into this one.

        ``var_translation`` maps the other store's variables either to
        variables of this store (which get bound to the translated value)
        or to existing nodes of this store (input snapshots).  Returns the
        node in *this* store now holding each translated variable's value.

        Used for child input extraction (parent facts → child store) and
        for child-return merging (child output facts → parent store).
        """
        live = other.live_roots()
        trans: dict[Node, Node] = {other.find(NULL): self.find(NULL)}
        resolution: dict[Variable, Node] = {}
        # 1. seed translations from the variable map
        for other_var, target in var_translation.items():
            other_node = other._binding.get(other_var)
            if other_node is None:
                continue
            COVERAGE.hit("store:absorb:input_binding")
            other_root = other.find(other_node)
            if isinstance(target, Variable):
                if other_root in trans:
                    self.bind(target, trans[other_root])
                else:
                    sort = (
                        Sort.ID if target.kind is VarKind.ID else Sort.NUMERIC
                    )
                    node = self.fresh(sort)
                    self.bind(target, node)
                    trans[other_root] = node
                resolution[other_var] = self.find(trans[other_root])
            else:
                if other_root in trans:
                    self.assert_eq(trans[other_root], target)
                else:
                    trans[other_root] = self.find(target)
                resolution[other_var] = self.find(trans[other_root])
        # 2. anonymous classes for the remaining live roots
        for root in sorted(live, key=repr):
            if root not in trans:
                if isinstance(root, ConstNode):
                    trans[root] = self.const(root.value)
                else:
                    COVERAGE.hit("store:absorb:fresh_class")
                    trans[root] = self.fresh(other.sort_of(root))
        # 3. per-class facts — iterate in a canonical order: set order
        # follows the process hash seed, and the replay order decides the
        # order numeric constraints are recorded (hence FM pivot choices
        # and the syntactic shape of later projections), which must be
        # reproducible run-over-run
        live_sorted = sorted(live, key=repr)
        for root in live_sorted:
            mine = trans[root]
            if other._null[root] is True:
                COVERAGE.hit("store:absorb:null_fact")
                self.assert_null(mine)
            elif other._null[root] is False:
                COVERAGE.hit("store:absorb:null_fact")
                self.assert_not_null(mine)
            anchor = other._anchor[root]
            if anchor is not None:
                self.assert_anchor(mine, anchor)
            for excluded in other._excluded.get(root, frozenset()):
                if self._anchor[self.find(mine)] != excluded:
                    self.exclude_anchor(mine, excluded)
        # 4. navigation edges (bases are anchored now)
        for root in live_sorted:
            for attr, child in sorted(other._children.get(root, {}).items()):
                child_root = other.find(child)
                if child_root not in trans:
                    continue
                COVERAGE.hit("store:absorb:navigation")
                mine_child = self.nav(trans[root], attr)
                self.assert_eq(mine_child, trans[child_root])
        # 5. disequalities (canonical order again: numeric disequalities
        # append to the constraint list)
        for pair in sorted(
            other._diseqs,
            key=lambda p: tuple(sorted(repr(n) for n in p)),
        ):
            members = [other.find(n) for n in pair]
            if all(m in trans for m in members) and len(members) == 2:
                COVERAGE.hit("store:absorb:disequality")
                self.assert_neq(trans[members[0]], trans[members[1]])
        # 6. numeric constraints
        for constraint in other.numeric_constraints():
            if all(u in trans for u in constraint.unknowns):
                COVERAGE.hit("store:absorb:numeric")
                renamed = constraint.rename(
                    {u: trans[u] for u in constraint.unknowns}
                )
                mapping: dict[Node, Fraction] = {}
                constant = renamed.expr.constant
                for unknown, coeff in renamed.expr.coeffs.items():
                    assert isinstance(unknown, Node)
                    root2 = self.find(unknown)
                    if isinstance(root2, ConstNode):
                        constant += coeff * root2.value
                    else:
                        mapping[root2] = mapping.get(root2, Fraction(0)) + coeff
                self.add_constraint(
                    Constraint(LinExpr(mapping, constant), renamed.rel)
                )
        return resolution

    # ------------------------------------------------------------------
    def access_paths(self) -> dict[Node, tuple]:
        """Canonical access paths per class root: variable names, pin
        labels, constants, ``null``, and navigation chains from those."""
        paths: dict[Node, list] = {}

        def note(root: Node, path: tuple) -> None:
            paths.setdefault(root, []).append(path)

        for variable, node in self._binding.items():
            note(self.find(node), (("var", variable.name),))
        for label, node in self._pins.items():
            note(self.find(node), (("pin",) + tuple(label),))
        for node in self._parent:
            if isinstance(node, ConstNode):
                note(self.find(node), (("const", str(node.value)),))
        note(self.find(NULL), (("null",),))
        frontier = [
            (root, path) for root, plist in paths.items() for path in plist
        ]
        seen = set()
        while frontier:
            root, path = frontier.pop()
            if len(path) > 16:
                continue
            for attr, child in sorted(self._children.get(root, {}).items()):
                child_root = self.find(child)
                child_path = path + (("nav", attr),)
                key = (child_root, child_path)
                if key not in seen:
                    seen.add(key)
                    paths.setdefault(child_root, []).append(child_path)
                    frontier.append((child_root, child_path))
        return {root: tuple(sorted(plist)) for root, plist in paths.items()}

    def canonical_key(self) -> tuple:
        """Hashable identity of the store up to internal node renaming.

        Two stores have equal canonical keys iff they denote the same set
        of isomorphism types: anonymous node serials are replaced by
        canonical *access paths* (variable names, pin labels, constants,
        navigation chains), so the key is invariant under the internal
        renamings that ``copy``/``restrict``/``absorb`` perform.  This is
        what makes state interning, summary memoization (Lemma 21's
        ``R_T`` relation), and condition-branch dedup sound.

        The key is memoized on the store and invalidated by a dirty bit:
        every mutator resets ``_canon_cache`` to None, so a
        mutated-then-rekeyed store always recomputes (property-tested in
        ``tests/test_perf.py``).  The expensive numeric part — renaming
        each linear constraint onto its labels and canonicalizing — is
        additionally memoized globally per (constraint, label assignment),
        and the resulting key tuples are interned so equal keys are
        identical objects.
        """
        if self._canon_cache is not None:
            COUNTERS.store_key_hits += 1
            return self._canon_cache
        COUNTERS.store_key_misses += 1
        # misses do the real canonicalization work; hits are one attribute
        # read, so only misses feed the sampled "canon" phase timer
        token = PHASES.begin("canon")
        try:
            return self._canonical_key_uncached()
        finally:
            PHASES.end("canon", token)

    def _canonical_key_uncached(self) -> tuple:
        paths = self.access_paths()
        label_of = {root: ps[0] for root, ps in paths.items()}
        classes = _intern_key(
            tuple(
                sorted(
                    (
                        paths[root],
                        self._null.get(root),
                        self._anchor.get(root),
                        tuple(sorted(self._excluded.get(root, frozenset()))),
                    )
                    for root in paths
                )
            )
        )
        diseqs = tuple(
            sorted(
                tuple(sorted(label_of[self.find(n)] for n in pair))
                for pair in self._diseqs
                if all(self.find(n) in label_of for n in pair)
            )
        )
        numeric = []
        for constraint in self._numeric:
            numeric.append(_constraint_canon_repr(constraint, label_of))
        key = _intern_key(
            (classes, diseqs, tuple(sorted(set(numeric))))
        )
        self._canon_cache = key
        return key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        paths = self.access_paths()
        parts = []
        for root, plist in sorted(paths.items(), key=lambda kv: kv[1]):
            flags = []
            if self._null.get(root) is True:
                flags.append("null")
            if self._anchor.get(root):
                flags.append(f"@{self._anchor[root]}")
            label = "=".join(
                ".".join(str(seg[-1]) for seg in p) for p in plist
            )
            parts.append(label + (f"[{','.join(flags)}]" if flags else ""))
        return "Store{" + "; ".join(parts) + "}"
