"""Applying FO conditions to constraint stores with case-splitting.

``apply_condition(store, φ)`` yields refinements of the store in which φ
definitely holds; the union of their realizations is exactly the set of
realizations of the store satisfying φ.  Branching happens per satisfying
truth-assignment of φ's atoms, and within negative relation atoms (which
are disjunctive: null argument / different anchor / attribute mismatch).
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from repro.database.schema import AttributeKind
from repro.errors import ConditionError
from repro.logic.conditions import (
    ArithAtom,
    Atom,
    Condition,
    Eq,
    Not,
    RelationAtom,
)
from repro.logic.terms import Const, NullTerm, Term, Variable, WildcardTerm
from repro.symbolic.nodes import NULL, Node
from repro.symbolic.store import ConstraintStore, Inconsistent


def term_node(store: ConstraintStore, term: Term) -> Node:
    if isinstance(term, WildcardTerm):
        raise ConditionError("wildcard positions carry no value")
    if isinstance(term, NullTerm):
        return NULL
    if isinstance(term, Const):
        return store.const(term.value)
    assert isinstance(term, Variable)
    return store.node_of(term)


def pull_exists(condition: Condition) -> tuple[tuple[Variable, ...], Condition]:
    """Hoist existential quantifiers out of positive boolean structure.

    ∃ distributes over ∧ and ∨; negative occurrences (∃ under ¬) cannot be
    handled symbolically and raise.  Returns (bound variables, matrix).
    """
    from repro.logic.conditions import And, Exists, Not, Or

    if isinstance(condition, Exists):
        inner_bound, matrix = pull_exists(condition.body)
        return tuple(condition.bound) + inner_bound, matrix
    if isinstance(condition, (And, Or)):
        bound: tuple[Variable, ...] = ()
        parts = []
        for part in condition.parts:
            part_bound, part_matrix = pull_exists(part)
            overlap = set(part_bound) & set(bound)
            if overlap:
                raise ConditionError(
                    f"reused bound variable names {overlap}; rename them"
                )
            bound += part_bound
            parts.append(part_matrix)
        return bound, type(condition)(*parts)
    if isinstance(condition, Not):
        inner_bound, _ = pull_exists(condition.body)
        if inner_bound:
            raise ConditionError(
                "∃ under negation is a universal quantifier — not supported; "
                "rewrite the condition"
            )
        return (), condition
    return (), condition


def apply_condition(
    store: ConstraintStore, condition: Condition
) -> Iterator[ConstraintStore]:
    """Yield consistent refinements of ``store`` where ``condition`` holds.

    Top-level (positive) existential quantifiers are handled exactly: the
    bound variables range over fresh anonymous values, which the relation
    atoms of the matrix constrain to database rows — the symbolic analogue
    of the paper's "simulate ∃FO by adding variables".
    """
    from repro.logic.conditions import eliminate_single_atom_exists, nnf_condition

    condition = eliminate_single_atom_exists(condition)
    bound, matrix = pull_exists(condition)
    if bound:
        scratch = store.copy()
        saved = {
            variable: scratch._binding.get(variable) for variable in bound
        }
        for variable in bound:
            scratch.rebind_fresh(variable)
        for refined in apply_condition(scratch, matrix):
            for variable, old in saved.items():
                if old is None:
                    refined._binding.pop(variable, None)
                else:
                    refined._binding[variable] = old
            refined._canon_cache = None
            yield refined
        return
    seen_keys: set = set()
    for branch in _apply_nnf(store.copy(), nnf_condition(matrix)):
        if branch.is_consistent():
            key = branch.canonical_key()
            if key not in seen_keys:
                seen_keys.add(key)
                yield branch


def _apply_nnf(store: ConstraintStore, condition: Condition) -> list[ConstraintStore]:
    """Refinements making an NNF condition hold.  Consumes ``store`` (it
    may be mutated and/or appear in the result); branches are independent
    copies.  Arithmetic consistency is checked by the caller."""
    from repro.logic.conditions import And, Exists, Or, TRUE, FALSE

    if condition is TRUE or isinstance(condition, type(TRUE)):
        return [store]
    if condition is FALSE or isinstance(condition, type(FALSE)):
        return []
    if isinstance(condition, Atom):
        return list(apply_atom(store, condition, True))
    if isinstance(condition, Not):
        body = condition.body
        if not isinstance(body, Atom):
            raise ConditionError(f"not in NNF: {condition!r}")
        return list(apply_atom(store, body, False))
    if isinstance(condition, And):
        branches = [store]
        for part in condition.parts:
            grown: list[ConstraintStore] = []
            for branch in branches:
                grown.extend(_apply_nnf(branch, part))
            branches = grown
            if not branches:
                return []
        return branches
    if isinstance(condition, Or):
        results: list[ConstraintStore] = []
        for index, part in enumerate(condition.parts):
            source = store if index == len(condition.parts) - 1 else store.copy()
            results.extend(_apply_nnf(source, part))
        return results
    if isinstance(condition, Exists):
        bound, matrix = pull_exists(condition)
        saved = {variable: store._binding.get(variable) for variable in bound}
        for variable in bound:
            store.rebind_fresh(variable)
        results = _apply_nnf(store, matrix)
        for refined in results:
            for variable, old in saved.items():
                if old is None:
                    refined._binding.pop(variable, None)
                else:
                    refined._binding[variable] = old
            refined._canon_cache = None
        return results
    raise ConditionError(f"cannot apply {condition!r}")


def apply_atom(
    store: ConstraintStore, atom: Atom, truth: bool
) -> Iterator[ConstraintStore]:
    """Yield refinements of ``store`` in which the atom has value ``truth``.

    The input store is consumed (mutated or copied); callers pass a copy.
    """
    if isinstance(atom, Eq):
        yield from _apply_eq(store, atom, truth)
    elif isinstance(atom, ArithAtom):
        yield from _apply_arith(store, atom, truth)
    elif isinstance(atom, RelationAtom):
        if truth:
            yield from _apply_relation_true(store, atom)
        else:
            yield from _apply_relation_false(store, atom)
    else:
        raise ConditionError(f"unsupported atom for symbolic application: {atom!r}")


def _apply_eq(store: ConstraintStore, atom: Eq, truth: bool) -> Iterator[ConstraintStore]:
    try:
        left = term_node(store, atom.left)
        right = term_node(store, atom.right)
        if truth:
            store.assert_eq(left, right)
        else:
            store.assert_neq(left, right)
    except Inconsistent:
        return
    yield store


def _apply_arith(
    store: ConstraintStore, atom: ArithAtom, truth: bool
) -> Iterator[ConstraintStore]:
    constraint = atom.constraint if truth else atom.constraint.negate()
    mapping = {
        unknown: store.node_of(unknown)  # type: ignore[arg-type]
        for unknown in constraint.unknowns
    }
    try:
        renamed = constraint.rename(mapping)
        store.add_linear(renamed.expr, renamed.rel)
    except Inconsistent:
        return
    yield store


def _apply_relation_true(
    store: ConstraintStore, atom: RelationAtom
) -> Iterator[ConstraintStore]:
    relation = store.schema.relation(atom.relation)
    names = relation.attribute_names
    first = atom.args[0]
    if isinstance(first, NullTerm):
        return  # R(null, …) is false
    try:
        ident = term_node(store, first)
        store.assert_anchor(ident, atom.relation)
        for position in range(1, len(atom.args)):
            if isinstance(atom.args[position], WildcardTerm):
                continue  # unconstrained position (eliminated ∃)
            attr = relation.attribute(names[position])
            child = store.nav(ident, attr.name)
            arg = term_node(store, atom.args[position])
            store.assert_eq(child, arg)
    except Inconsistent:
        return
    yield store


def _apply_relation_false(
    store: ConstraintStore, atom: RelationAtom
) -> Iterator[ConstraintStore]:
    relation = store.schema.relation(atom.relation)
    names = relation.attribute_names
    first = atom.args[0]
    if isinstance(first, NullTerm):
        yield store  # already false
        return
    # branch (a): the identifier is null
    branch = store.copy()
    try:
        branch.assert_null(term_node(branch, first))
        yield branch
    except Inconsistent:
        pass
    # branch (b): anchored to a different relation
    branch = store.copy()
    try:
        branch.exclude_anchor(term_node(branch, first), atom.relation)
        yield branch
    except Inconsistent:
        pass
    # branches (c): anchored here but one position differs
    for position in range(1, len(atom.args)):
        if isinstance(atom.args[position], WildcardTerm):
            continue  # a wildcard position cannot mismatch
        branch = store.copy()
        try:
            ident = term_node(branch, first)
            branch.assert_anchor(ident, atom.relation)
            attr = relation.attribute(names[position])
            child = branch.nav(ident, attr.name)
            arg = term_node(branch, atom.args[position])
            branch.assert_neq(child, arg)
            yield branch
        except Inconsistent:
            continue


def condition_status(store: ConstraintStore, condition: Condition) -> bool | None:
    """Definite truth value of a condition on the store, or None.

    Decided by refinement: φ is definitely true when ¬φ admits no
    consistent refinement, and vice versa.
    """
    negative = next(iter(apply_condition(store, Not(condition))), None)
    positive = next(iter(apply_condition(store, condition)), None)
    if positive is not None and negative is None:
        return True
    if positive is None and negative is not None:
        return False
    if positive is None and negative is None:
        raise Inconsistent("store admits neither φ nor ¬φ — inconsistent input")
    return None
