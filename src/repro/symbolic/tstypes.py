"""TS-isomorphism types: the counter dimensions of the task VASS (§4.1).

A TS-type is the *total* equality type of the tuple ``s̄^T`` together with
the task's ID-sorted input variables: which positions are equal, which are
null, and which relation each non-null position is anchored to.  Counters
(one per TS-type) track the net number of insertions into ``S^T`` — the
symbolic content of the artifact relation.

This is the depth-0 specialization of the paper's TS-isomorphism types
(projections of full types onto ``x̄^T_in ∪ s̄^T`` with navigation up to
``h(T)``): it is exact whenever no condition establishes navigation facts
about a tuple *before* inserting it — which ``analysis.set_navigation_
warnings`` checks statically — because tuples that agree on all queried
relationships are interchangeable.  The *input-bound* special case
(counters capped at 1, Definition of ``a(δ, τ̂, τ̂′, c̄_ib)``) is preserved
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.logic.terms import Variable, VarKind
from repro.symbolic.nodes import Node, Sort
from repro.symbolic.store import ConstraintStore, Inconsistent


@dataclass(frozen=True)
class TSType:
    """Total equality type over the slots ``s̄^T ++ (id inputs)``.

    * ``partition``: for each slot, the index of its class (classes are
      numbered by first occurrence);
    * ``nulls``: per class, whether it is null;
    * ``anchors``: per class, the anchoring relation (None for null).
    """

    slot_names: tuple[str, ...]
    partition: tuple[int, ...]
    nulls: tuple[bool, ...]
    anchors: tuple[str | None, ...]

    def class_count(self) -> int:
        return len(self.nulls)

    def is_input_bound(self, set_slot_count: int) -> bool:
        """Every non-null set slot shares a class with some input slot.

        Depth-0 version of the paper's input-bound condition: such tuples
        can collide on re-insertion, so their counters are capped at 1.
        """
        input_classes = set(self.partition[set_slot_count:])
        for slot in range(set_slot_count):
            cls = self.partition[slot]
            if not self.nulls[cls] and cls not in input_classes:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        groups: dict[int, list[str]] = {}
        for name, cls in zip(self.slot_names, self.partition):
            groups.setdefault(cls, []).append(name)
        parts = []
        for cls, names in sorted(groups.items()):
            flag = "null" if self.nulls[cls] else (self.anchors[cls] or "?")
            parts.append("=".join(names) + f":{flag}")
        return "TS⟨" + ", ".join(parts) + "⟩"


def ts_slots(
    set_variables: Sequence[Variable], input_variables: Sequence[Variable]
) -> tuple[Variable, ...]:
    """The slot variables: s̄^T first, then the ID-sorted inputs."""
    inputs = tuple(v for v in input_variables if v.kind is VarKind.ID)
    return tuple(set_variables) + inputs


def ts_type_of(
    store: ConstraintStore, slots: Sequence[Variable]
) -> Iterator[tuple[TSType, ConstraintStore]]:
    """Totalize the store over the slots: yield every (TS-type, refined
    store) pair consistent with the current constraints.

    Case-splits every unknown pairwise equality, null status, and anchor
    among the slot classes — the snapshot step of an insertion (the
    paper's Definition 16 requires counters over *total* TS-types).
    """
    names = tuple(v.name for v in slots)

    def totalize(current: ConstraintStore) -> Iterator[ConstraintStore]:
        nodes = [current.node_of(v) for v in slots]
        # undecided pair?
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                verdict = current.equal(nodes[i], nodes[j])
                if verdict is None:
                    eq_branch = current.copy()
                    try:
                        eq_branch.assert_eq(
                            eq_branch.node_of(slots[i]), eq_branch.node_of(slots[j])
                        )
                        if eq_branch.is_consistent():
                            yield from totalize(eq_branch)
                    except Inconsistent:
                        pass
                    neq_branch = current.copy()
                    try:
                        neq_branch.assert_neq(
                            neq_branch.node_of(slots[i]), neq_branch.node_of(slots[j])
                        )
                        if neq_branch.is_consistent():
                            yield from totalize(neq_branch)
                    except Inconsistent:
                        pass
                    return
        # undecided null status?
        for i, node in enumerate(nodes):
            if current.null_status(node) is None:
                null_branch = current.copy()
                try:
                    null_branch.assert_null(null_branch.node_of(slots[i]))
                    if null_branch.is_consistent():
                        yield from totalize(null_branch)
                except Inconsistent:
                    pass
                notnull_branch = current.copy()
                try:
                    notnull_branch.assert_not_null(notnull_branch.node_of(slots[i]))
                    if notnull_branch.is_consistent():
                        yield from totalize(notnull_branch)
                except Inconsistent:
                    pass
                return
        # undecided anchor?
        for i, node in enumerate(nodes):
            if current.null_status(node) is False and current.anchor_of(node) is None:
                for relation in current.allowed_anchors(node):
                    branch = current.copy()
                    try:
                        branch.assert_anchor(branch.node_of(slots[i]), relation)
                        if branch.is_consistent():
                            yield from totalize(branch)
                    except Inconsistent:
                        pass
                return
        yield current

    for refined in totalize(store):
        yield _read_ts_type(refined, slots, names), refined


def _read_ts_type(
    store: ConstraintStore, slots: Sequence[Variable], names: tuple[str, ...]
) -> TSType:
    nodes = [store.node_of(v) for v in slots]
    roots: list[Node] = []
    partition: list[int] = []
    for node in nodes:
        root = store.find(node)
        if root in roots:
            partition.append(roots.index(root))
        else:
            partition.append(len(roots))
            roots.append(root)
    nulls = tuple(store.null_status(root) is True for root in roots)
    anchors = tuple(
        None if store.null_status(root) is True else store.anchor_of(root)
        for root in roots
    )
    return TSType(names, tuple(partition), nulls, anchors)


def impose_ts_type(
    store: ConstraintStore,
    ts_type: TSType,
    slots: Sequence[Variable],
    fresh_slots: Sequence[Variable],
) -> ConstraintStore | None:
    """Refine ``store`` so the slots realize ``ts_type``; None if impossible.

    ``fresh_slots`` (the retrieved s̄^T) are rebound to fresh nodes first —
    a retrieval overwrites them with the stored tuple's values.
    """
    refined = store.copy()
    for variable in fresh_slots:
        refined.rebind_fresh(variable)
    try:
        nodes = [refined.node_of(v) for v in slots]
        for i in range(len(slots)):
            for j in range(i + 1, len(slots)):
                if ts_type.partition[i] == ts_type.partition[j]:
                    refined.assert_eq(nodes[i], nodes[j])
                else:
                    refined.assert_neq(nodes[i], nodes[j])
        for i, node in enumerate(nodes):
            cls = ts_type.partition[i]
            if ts_type.nulls[cls]:
                refined.assert_null(refined.find(node))
            else:
                refined.assert_not_null(refined.find(node))
                anchor = ts_type.anchors[cls]
                if anchor is not None:
                    refined.assert_anchor(refined.find(node), anchor)
    except Inconsistent:
        return None
    return refined if refined.is_consistent() else None


# ----------------------------------------------------------------------
# counter updates: the vector ā(δ, τ̂, τ̂′, c̄_ib) of Section 4.1
# ----------------------------------------------------------------------
CounterVector = dict[TSType, int]


def insertion_vector(
    inserted: TSType | None,
    retrieved: TSType | None,
    input_bound_full: dict[TSType, bool],
    set_slot_count: int,
) -> CounterVector:
    """The net counter update for an internal service's set update δ.

    * plain insertion of a non-input-bound type: +1;
    * insertion of an input-bound type: +1 only if its capped counter is 0
      (``1 - c̄_ib(τ̂)`` in the paper);
    * retrieval: −1 on the retrieved type.
    """
    update: CounterVector = {}
    if inserted is not None:
        if inserted.is_input_bound(set_slot_count):
            already = input_bound_full.get(inserted, False)
            if not already:
                update[inserted] = update.get(inserted, 0) + 1
        else:
            update[inserted] = update.get(inserted, 0) + 1
    if retrieved is not None:
        update[retrieved] = update.get(retrieved, 0) - 1
    return update
