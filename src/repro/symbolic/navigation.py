"""Navigation sets: the expression universes of Section 4.1.

An expression is ``x_R.ξ2…ξm`` — an ID variable anchored at a relation,
followed by foreign-key steps and optionally a final numeric attribute.
``navigation_universe`` enumerates all expressions up to a depth bound,
which is finite for acyclic schemas regardless of the bound (paths cannot
revisit relations) and grows with the bound on (linearly-)cyclic schemas —
the size driver behind Tables 1 and 2 (measured by ``repro.analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.database.schema import AttributeKind, DatabaseSchema
from repro.logic.terms import Variable, VarKind


@dataclass(frozen=True)
class NavExpr:
    """``x_R.path`` — anchor variable, anchor relation, attribute path."""

    var: Variable
    relation: str
    path: tuple[str, ...] = ()

    @property
    def length(self) -> int:
        """The paper's expression length: 1 for the bare anchor ``x_R``."""
        return 1 + len(self.path)

    def extend(self, attr: str) -> "NavExpr":
        return NavExpr(self.var, self.relation, self.path + (attr,))

    def prefix(self) -> "NavExpr | None":
        if not self.path:
            return None
        return NavExpr(self.var, self.relation, self.path[:-1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "".join(f".{a}" for a in self.path)
        return f"{self.var.name}_{self.relation}{suffix}"


def expr_sort(schema: DatabaseSchema, expr: NavExpr) -> tuple[str, str | None]:
    """(kind, relation): kind is 'id' or 'numeric'; relation is the
    relation whose ID domain the expression ranges over (for 'id')."""
    relation = schema.relation(expr.relation)
    current = relation
    for attr_name in expr.path:
        attribute = current.attribute(attr_name)
        if attribute.kind is AttributeKind.NUMERIC:
            return ("numeric", None)
        assert attribute.references is not None
        current = schema.relation(attribute.references)
    return ("id", current.name)


def expressions_from(
    schema: DatabaseSchema, var: Variable, relation: str, max_length: int
) -> Iterator[NavExpr]:
    """All expressions anchored at ``var_relation`` of length ≤ max_length."""
    if var.kind is not VarKind.ID:
        return
    root = NavExpr(var, relation)
    if root.length > max_length:
        return
    stack = [root]
    while stack:
        expr = stack.pop()
        yield expr
        if expr.length >= max_length:
            continue
        kind, rel_name = expr_sort(schema, expr)
        if kind == "numeric":
            continue
        assert rel_name is not None
        relation_obj = schema.relation(rel_name)
        for attribute in relation_obj.attributes:
            extended = expr.extend(attribute.name)
            if attribute.kind is AttributeKind.NUMERIC:
                yield extended
            else:
                stack.append(extended)


def navigation_universe(
    schema: DatabaseSchema, variables: tuple[Variable, ...], max_length: int
) -> list[NavExpr]:
    """The navigation set E_T over all (variable, anchor) pairs.

    Each ID variable contributes expressions for *every* possible anchor
    relation (a total type picks at most one anchor per variable — the
    navigation set of Definition 15 contains at most one ``x_R`` per x).
    """
    universe: list[NavExpr] = []
    for variable in variables:
        for relation in schema.names:
            universe.extend(
                expressions_from(schema, variable, relation, max_length)
            )
    return universe


def universe_size_per_anchor(
    schema: DatabaseSchema, relation: str, max_length: int
) -> int:
    """Number of expressions from one anchor at ``relation`` — the
    navigation-set size measure of Appendix C.3 (Figure 4's quantity)."""
    from repro.logic.terms import id_var

    probe = id_var("_probe")
    return sum(1 for _ in expressions_from(schema, probe, relation, max_length))
