"""The periodic Retrieve construction (Appendix C.1.2, Figure 3).

For a periodic local symbolic run, the proof of Theorem 20 must match
every retrieving instance with an earlier inserting instance of the same
TS-type (the ``Retrieve`` function), such that every *life cycle* of
set-tuple values has a bounded timespan (Lemma 51).  Bounded timespans let
the construction partition life cycles into finitely many groups of
identical, non-overlapping cycles — which is how the infinite run is
realized over a *finite* database.

The construction follows the paper's two steps:

1. an arbitrary type-respecting matching on the prefix ``[0, n]``;
2. periodic extension: each retrieval at ``j ∈ (n, n+t]`` copies the
   matching of ``j − t``, shifted by ``t`` when the matched insertion is
   recent (case 2(i)), else re-matched inside the last window (case
   2(ii)) — Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.symbolic.symbolic_run import PeriodicSymbolicRun, SymbolicStep, segments_of


@dataclass
class RetrieveFunction:
    """The matching: retrieval index -> insertion index (on an unrolling)."""

    run: PeriodicSymbolicRun
    horizon: int
    mapping: dict[int, int] = field(default_factory=dict)

    def check(self) -> None:
        """Validate the Retrieve axioms on the materialized horizon."""
        steps = self.run.unroll(self.horizon)
        used: set[int] = set()
        for retrieval, insertion in self.mapping.items():
            if insertion in used:
                raise ValueError(f"insertion {insertion} matched twice")
            used.add(insertion)
            if insertion >= retrieval:
                raise ValueError(f"Retrieve({retrieval}) = {insertion} not earlier")
            if steps[insertion].ts_label != steps[retrieval].ts_label:
                raise ValueError(
                    f"type mismatch at Retrieve({retrieval}) = {insertion}"
                )

    def max_gap(self) -> int:
        return max(
            (retrieval - insertion for retrieval, insertion in self.mapping.items()),
            default=0,
        )


def insertion_indices(steps: list[SymbolicStep]) -> list[int]:
    return [i for i, s in enumerate(steps) if s.inserts and not s.input_bound]


def retrieval_indices(steps: list[SymbolicStep]) -> list[int]:
    return [i for i, s in enumerate(steps) if s.retrieves and not s.input_bound]


def build_retrieve(run: PeriodicSymbolicRun, periods: int = 4) -> RetrieveFunction:
    """Construct a periodic Retrieve with gaps bounded by 2t (Lemma 50).

    ``periods`` controls how far the loop is unrolled for materialization;
    the mapping repeats with period t beyond the construction window.
    """
    n, t = run.loop_start, run.period
    horizon = n + (periods + 1) * t
    steps = run.unroll(horizon)
    retrieve: dict[int, int] = {}
    used: set[int] = set()

    def match_before(index: int, lo: int = 0) -> int | None:
        """Latest unused insertion of the right type in [lo, index)."""
        for candidate in range(index - 1, lo - 1, -1):
            step = steps[candidate]
            if (
                step.inserts
                and not step.input_bound
                and candidate not in used
                and step.ts_label == steps[index].ts_label
            ):
                return candidate
        return None

    # Step 1: arbitrary valid matching on the prefix [0, n]
    for index in range(min(n + 1, horizon)):
        if steps[index].retrieves and not steps[index].input_bound:
            found = match_before(index)
            if found is None:
                raise ValueError(f"no insertion available for retrieval {index}")
            retrieve[index] = found
            used.add(found)

    # Step 2: extend periodically over (n, n+t], then copy with period t
    for index in range(n + 1, min(n + t + 1, horizon)):
        if not (steps[index].retrieves and not steps[index].input_bound):
            continue
        prior = index - t
        matched_prior = retrieve.get(prior)
        candidate = None
        if matched_prior is not None and matched_prior >= n - t + 1:
            # case 2(i): shift the earlier matching by t
            candidate = matched_prior + t
            if candidate in used or candidate >= index:
                candidate = None
        if candidate is None:
            # case 2(ii): re-match inside the last window (n − t, n]
            candidate = match_before(index, lo=max(0, n - t + 1))
        if candidate is None:
            candidate = match_before(index)
        if candidate is None:
            raise ValueError(f"no insertion available for retrieval {index}")
        retrieve[index] = candidate
        used.add(candidate)

    # periodic copies: Retrieve(j + k·t) = Retrieve(j) + k·t
    for index in range(n + t + 1, horizon):
        if not (steps[index].retrieves and not steps[index].input_bound):
            continue
        base = index
        while base > n + t:
            base -= t
        base_match = retrieve.get(base)
        if base_match is None:
            continue
        shifted = base_match + (index - base)
        if shifted < index and shifted not in used:
            retrieve[index] = shifted
            used.add(shifted)
        else:
            fallback = match_before(index)
            if fallback is not None:
                retrieve[index] = fallback
                used.add(fallback)
    result = RetrieveFunction(run, horizon, retrieve)
    result.check()
    return result


@dataclass
class LifeCycle:
    """A maximal chain of instances linked by same-segment adjacency or by
    the Retrieve function (Appendix C.1.2)."""

    indices: list[int]

    def timespan(self) -> tuple[int, int]:
        return (self.indices[0], self.indices[-1])


def life_cycles(run: PeriodicSymbolicRun, retrieve: RetrieveFunction) -> list[LifeCycle]:
    """Partition the horizon's insert/retrieve instances into life cycles.

    Two consecutive members are either in the same segment or linked by
    ``Retrieve`` (insertion → its retrieval).
    """
    steps = run.unroll(retrieve.horizon)
    links: dict[int, int] = {}  # insertion -> retrieval
    for retrieval, insertion in retrieve.mapping.items():
        links[insertion] = retrieval
    seg_of: dict[int, int] = {}
    for seg_index, segment in enumerate(segments_of(steps)):
        for position in segment:
            seg_of[position] = seg_index
    events = sorted(
        i
        for i, s in enumerate(steps)
        if (s.inserts or s.retrieves) and not s.input_bound
    )
    cycles: list[LifeCycle] = []
    assigned: set[int] = set()
    for event in events:
        if event in assigned:
            continue
        chain = [event]
        assigned.add(event)
        current = event
        while True:
            nxt = None
            if current in links and links[current] not in assigned:
                nxt = links[current]
            else:
                for other in events:
                    if (
                        other > current
                        and other not in assigned
                        and seg_of[other] == seg_of[current]
                    ):
                        nxt = other
                        break
            if nxt is None:
                break
            chain.append(nxt)
            assigned.add(nxt)
            current = nxt
        cycles.append(LifeCycle(chain))
    return cycles


def max_timespan(cycles: list[LifeCycle]) -> int:
    return max((c.timespan()[1] - c.timespan()[0] for c in cycles), default=0)


def lemma51_bound(run: PeriodicSymbolicRun, set_arity: int, child_count: int) -> int:
    """The timespan bound of Lemma 51:
    (n+t) · max(2t, n+t) · (|s̄^T|+1) · 2|child(T)|."""
    n, t = run.loop_start, run.period
    return (n + t) * max(2 * t, n + t) * (set_arity + 1) * max(2 * child_count, 1)
