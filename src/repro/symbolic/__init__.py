"""Symbolic layer: isomorphism types, constraint stores, TS-types, and
symbolic runs (Section 4.1, Appendix C).

Two representations coexist:

* :mod:`repro.symbolic.isotypes` — the paper's *total* T-isomorphism types
  over full navigation sets up to ``h(T)``; exercised on acyclic schemas by
  tests and by the counting experiments (Appendix C.3);
* :mod:`repro.symbolic.store` — lazily-refined *partial* types (constraint
  stores), the representation the verifier searches over.  Every consistent
  store denotes a non-empty set of total types, and conditions are applied
  by case-splitting on unknown relationships, so reachability over stores
  coincides with reachability over total types (the refinement used by the
  authors' own VERIFAS prototype).
"""

from repro.symbolic.nodes import (
    NULL,
    ConstNode,
    NavNode,
    Node,
    Sort,
    ValueNode,
    ZERO,
    null_node,
)
from repro.symbolic.store import ConstraintStore, Inconsistent
from repro.symbolic.tstypes import TSType, insertion_vector, ts_slots, ts_type_of

__all__ = [
    "NULL",
    "ConstNode",
    "NavNode",
    "Node",
    "Sort",
    "ValueNode",
    "ZERO",
    "null_node",
    "ConstraintStore",
    "Inconsistent",
    "TSType",
    "insertion_vector",
    "ts_slots",
    "ts_type_of",
]
