"""Local symbolic runs (Definition 17) as explicit objects.

The verifier never materializes whole symbolic runs (it searches the
VASS); these structures exist for the Appendix C.1 machinery — segments,
life cycles, and the periodic Retrieve construction of Figure 3 — which
underpins the if-direction of Theorem 20 and is reproduced as experiment
F3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class SymbolicStep:
    """One ``(I_i, σ_i)`` of a local symbolic run, abstracted to what the
    Retrieve construction needs: the TS-type label of the instance, the
    service kind, and the set-update flags."""

    ts_label: str
    is_internal: bool
    inserts: bool = False
    retrieves: bool = False
    input_bound: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = ("+" if self.inserts else "") + ("-" if self.retrieves else "")
        return f"⟨{self.ts_label}{flags}⟩"


@dataclass
class PeriodicSymbolicRun:
    """An (eventually periodic) local symbolic run: ``steps[0:loop_start]``
    then ``steps[loop_start:]`` repeating with period ``period``.

    ``steps`` must contain the prefix plus at least one full period
    (Definition 42: for i ≥ n, (τ_i, σ_i) = (τ_{i−t}, σ_{i−t}))."""

    steps: list[SymbolicStep]
    loop_start: int
    period: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.loop_start + self.period > len(self.steps):
            raise ValueError("steps must include one full period")

    def step(self, index: int) -> SymbolicStep:
        """The step at any index of the infinite unrolling."""
        if index < self.loop_start:
            return self.steps[index]
        offset = (index - self.loop_start) % self.period
        return self.steps[self.loop_start + offset]

    def unroll(self, length: int) -> list[SymbolicStep]:
        return [self.step(i) for i in range(length)]

    def validate_periodicity(self) -> None:
        """Check Definition 42 on the materialized steps."""
        for index in range(self.loop_start + self.period, len(self.steps)):
            if self.steps[index] != self.steps[index - self.period]:
                raise ValueError(
                    f"step {index} differs from step {index - self.period}"
                )


def segments_of(steps: Sequence[SymbolicStep]) -> list[list[int]]:
    """Segment decomposition (Definition 17): maximal intervals with no
    internal service after the first position."""
    result: list[list[int]] = []
    current: list[int] = []
    for index, step in enumerate(steps):
        if step.is_internal and current:
            result.append(current)
            current = []
        current.append(index)
    if current:
        result.append(current)
    return result
