"""Total T-isomorphism types (Definition 15) — the paper's faithful
symbolic representation.

A total type is an equivalence relation over ``E⁺_T = E_T ∪ x̄^T ∪
{null, 0}`` respecting sorts, the null rules, and congruence (key
dependencies).  This module constructs types from concrete valuations
(the direction used in the only-if part of Theorem 20), checks the
Definition-15 axioms, evaluates conditions on types, and implements
projections — exactly the operations the paper's proofs manipulate.

The verifier itself searches over the *partial* types of
``repro.symbolic.store``; total types are exercised by tests (on acyclic
schemas, where navigation sets are small) and by the counting experiments
of Appendix C.3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.database.instance import DatabaseInstance, Identifier, Value
from repro.database.schema import AttributeKind, DatabaseSchema
from repro.errors import ConditionError
from repro.logic.conditions import (
    ArithAtom,
    Atom,
    Condition,
    Eq,
    RelationAtom,
)
from repro.logic.terms import Const, NullTerm, Term, Variable, VarKind
from repro.symbolic.navigation import NavExpr, expr_sort, expressions_from

# elements of E⁺_T : variables, navigation expressions, null, zero
NULL_ELEM = ("null",)
ZERO_ELEM = ("zero",)
Element = Variable | NavExpr | tuple


@dataclass(frozen=True)
class IsoType:
    """A total T-isomorphism type: navigation set + equality type.

    ``classes`` is a partition of the elements (each class a frozenset);
    the anchor of each ID variable is recoverable from which ``x_R``
    expressions exist in the navigation set.
    """

    schema: DatabaseSchema
    variables: tuple[Variable, ...]
    navigation: frozenset[NavExpr]
    classes: tuple[frozenset, ...]

    # ------------------------------------------------------------------
    def class_of(self, element: Element) -> frozenset | None:
        for cls in self.classes:
            if element in cls:
                return cls
        return None

    def equal(self, a: Element, b: Element) -> bool:
        cls = self.class_of(a)
        return cls is not None and b in cls

    def anchor_of(self, variable: Variable) -> str | None:
        """The relation R with ``x_R`` in the navigation set, if any."""
        for expr in self.navigation:
            if expr.var == variable and not expr.path:
                return expr.relation
        return None

    def is_null(self, variable: Variable) -> bool:
        return self.equal(variable, NULL_ELEM)

    # ------------------------------------------------------------------
    # Definition 15's axioms
    # ------------------------------------------------------------------
    def validate(self) -> None:
        elements = set(self.variables) | set(self.navigation)
        elements |= {NULL_ELEM, ZERO_ELEM}
        covered = set().union(*self.classes) if self.classes else set()
        if covered != elements:
            raise ConditionError("classes must partition E⁺_T")
        for cls in self.classes:
            sorts = {self._sort(e) for e in cls}
            if len(sorts) > 1:
                raise ConditionError(f"mixed sorts in class {cls!r}: {sorts}")
        # x ∼ x_R for anchored variables
        for expr in self.navigation:
            if not expr.path and not self.equal(expr.var, expr):
                raise ConditionError(f"{expr!r} must be equal to its variable")
        # null-sorted elements are ∼ null
        for variable in self.variables:
            if variable.kind is VarKind.ID and self.anchor_of(variable) is None:
                if not self.is_null(variable):
                    raise ConditionError(
                        f"unanchored ID variable {variable!r} must be null"
                    )
        # congruence: u ∼ v ⇒ u.f ∼ v.f
        for cls in self.classes:
            for a, b in itertools.combinations(sorted(cls, key=repr), 2):
                self._check_congruence(a, b)

    def _check_congruence(self, a: Element, b: Element) -> None:
        extensions_a = self._extensions(a)
        extensions_b = self._extensions(b)
        for attr, expr_a in extensions_a.items():
            expr_b = extensions_b.get(attr)
            if expr_b is not None and not self.equal(expr_a, expr_b):
                raise ConditionError(
                    f"congruence violated: {a!r} ∼ {b!r} but "
                    f"{expr_a!r} ≁ {expr_b!r}"
                )

    def _extensions(self, element: Element) -> dict[str, NavExpr]:
        out: dict[str, NavExpr] = {}
        if isinstance(element, Variable):
            anchor = self.anchor_of(element)
            if anchor is None:
                return out
            base = NavExpr(element, anchor)
        elif isinstance(element, NavExpr):
            base = element
        else:
            return out
        for expr in self.navigation:
            if expr.var == base.var and expr.relation == base.relation:
                if len(expr.path) == len(base.path) + 1 and expr.path[: len(base.path)] == base.path:
                    out[expr.path[-1]] = expr
        return out

    def _sort(self, element: Element) -> tuple:
        if element == NULL_ELEM:
            return ("null-or-id",)
        if element == ZERO_ELEM:
            return ("numeric",)
        if isinstance(element, Variable):
            if element.kind is VarKind.NUMERIC:
                return ("numeric",)
            anchor = self.anchor_of(element)
            return ("id", anchor) if anchor else ("null-or-id",)
        assert isinstance(element, NavExpr)
        kind, relation = expr_sort(self.schema, element)
        return (kind,) if kind == "numeric" else ("id", relation)

    # ------------------------------------------------------------------
    # condition evaluation (τ ⊨ φ, Section 4.1)
    # ------------------------------------------------------------------
    def satisfies(self, condition: Condition) -> bool:
        assignment: dict[Atom, bool] = {}
        for atom in condition.atoms():
            assignment[atom] = self._atom_value(atom)
        return condition.evaluate_abstract(assignment)

    def _atom_value(self, atom: Atom) -> bool:
        if isinstance(atom, Eq):
            return self.equal(self._term_element(atom.left), self._term_element(atom.right))
        if isinstance(atom, RelationAtom):
            return self._relation_value(atom)
        if isinstance(atom, ArithAtom):
            raise ConditionError(
                "total IsoTypes do not carry cells; arithmetic atoms are "
                "evaluated by the verifier's constraint stores"
            )
        raise ConditionError(f"unsupported atom {atom!r}")

    def _term_element(self, term: Term) -> Element:
        if isinstance(term, NullTerm):
            return NULL_ELEM
        if isinstance(term, Const):
            if term.value == 0:
                return ZERO_ELEM
            raise ConditionError("total IsoTypes only know the constant 0")
        assert isinstance(term, Variable)
        return term

    def _relation_value(self, atom: RelationAtom) -> bool:
        first = atom.args[0]
        if not isinstance(first, Variable):
            return False
        anchor = self.anchor_of(first)
        if anchor != atom.relation:
            return False
        relation = self.schema.relation(atom.relation)
        names = relation.attribute_names
        base = NavExpr(first, anchor)
        for position in range(1, len(atom.args)):
            expr = base.extend(names[position])
            if expr not in self.navigation:
                return False
            if not self.equal(expr, self._term_element(atom.args[position])):
                return False
        return True

    # ------------------------------------------------------------------
    # projection (τ|z̄ and τ|(z̄, k), Section 4.1)
    # ------------------------------------------------------------------
    def project(
        self, variables: Iterable[Variable], max_length: int | None = None
    ) -> "IsoType":
        keep = set(variables)
        nav = frozenset(
            e
            for e in self.navigation
            if e.var in keep and (max_length is None or e.length <= max_length)
        )
        elements = keep | set(nav) | {NULL_ELEM, ZERO_ELEM}
        classes = []
        for cls in self.classes:
            restricted = frozenset(e for e in cls if e in elements)
            if restricted:
                classes.append(restricted)
        return IsoType(
            self.schema,
            tuple(v for v in self.variables if v in keep),
            nav,
            tuple(sorted(classes, key=repr)),
        )

    def canonical_key(self) -> tuple:
        return (
            tuple(sorted(repr(e) for e in self.navigation)),
            tuple(
                sorted(
                    tuple(sorted(repr(e) for e in cls)) for cls in self.classes
                )
            ),
        )


def iso_type_of_valuation(
    schema: DatabaseSchema,
    variables: Sequence[Variable],
    db: DatabaseInstance,
    valuation: Mapping[Variable, Value],
    depth: int,
) -> IsoType:
    """The T-isomorphism type of a concrete valuation (Appendix C.1.1).

    Builds the navigation set from the anchors of non-null ID values and
    groups elements by their concrete values in the database.
    """
    navigation: list[NavExpr] = []
    concrete: dict[Element, object] = {NULL_ELEM: ("null",), ZERO_ELEM: Fraction(0)}
    for variable in variables:
        value = valuation.get(variable)
        if variable.kind is VarKind.NUMERIC:
            concrete[variable] = Fraction(value) if value is not None else Fraction(0)
            continue
        if value is None:
            concrete[variable] = ("null",)
            continue
        assert isinstance(value, Identifier)
        concrete[variable] = value
        for expr in expressions_from(schema, variable, value.relation, depth):
            target = db.navigate(value, expr.path)
            if target is None and expr.path:
                continue
            navigation.append(expr)
            if expr.path:
                concrete[expr] = (
                    Fraction(target)
                    if not isinstance(target, Identifier)
                    else target
                )
            else:
                concrete[expr] = value
    groups: dict[object, set] = {}
    for element, value in concrete.items():
        groups.setdefault(value, set()).add(element)
    classes = tuple(
        sorted((frozenset(g) for g in groups.values()), key=repr)
    )
    return IsoType(schema, tuple(variables), frozenset(navigation), classes)
