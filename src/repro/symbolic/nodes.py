"""Nodes of the symbolic constraint store.

A node denotes one (symbolic) value:

* :class:`ValueNode` — an anonymous ID-sorted or numeric-sorted value;
  artifact variables are *bound* to value nodes by the store, and rebound
  when overwritten (service transitions, child returns, set retrievals);
* :class:`NavNode` — one attribute step from an ID-sorted node; chains of
  NavNodes are the navigation expressions ``x_R.f_1…f_k[.a]`` of §4.1;
* :class:`ConstNode` — a numeric constant (0 in particular);
* ``NULL`` — the null constant (ID sort).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction


class Sort(enum.Enum):
    ID = "id"
    NUMERIC = "numeric"


class Node:
    """Base marker class; all nodes are frozen and hashable."""

    __slots__ = ()


@dataclass(frozen=True, eq=False)
class ValueNode(Node):
    serial: int
    sort: Sort

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash(self.serial) * 31 + (7 if self.sort is Sort.ID else 11),
        )

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, ValueNode)
            and self.serial == other.serial
            and self.sort is other.sort
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"v{self.serial}{'ᵢ' if self.sort is Sort.ID else 'ₙ'}"


@dataclass(frozen=True, eq=False)
class NavNode(Node):
    """``base.attr`` — base must denote a non-null anchored ID value."""

    base: Node
    attr: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.base, self.attr)))

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, NavNode)
            and self.attr == other.attr
            and self.base == other.base
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.base!r}.{self.attr}"


@dataclass(frozen=True)
class ConstNode(Node):
    value: Fraction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.value)


@dataclass(frozen=True)
class _NullNode(Node):
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "null"


NULL = _NullNode()
ZERO = ConstNode(Fraction(0))


def null_node() -> Node:
    return NULL
