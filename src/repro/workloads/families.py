"""Size-parameterized scenario families with verdicts known at every size.

Three business-flavored families scale one structural dimension each,
so the gallery (and ``python -m repro bench``) can sweep cost against
size while every point keeps an enforced ``expect:`` verdict:

* **order fulfillment** — one root order task fanning out to ``n``
  warehouse child tasks (width scaling: summary memoization, child
  interleavings);
* **ticketing** — an escalation chain nested ``depth`` levels under a
  ticket queue with an artifact relation (depth scaling: segment
  discipline, ω-acceleration on the stored tickets);
* **billing** — ``tiers`` plan-tier services, each guarded by a linear
  arithmetic rate band (branch scaling: Fourier–Motzkin load).

Every family member carries the same two properties at every size — a
safety invariant each service re-derives (**holds**) and a bound the
unconstrained database defeats (**violated**) — so the expected verdict
is size-independent by construction, not by per-size tuning.

The checked-in ``.has`` files under ``src/repro/workloads/families/``
are generated from these builders by the PR 5 printer
(:func:`write_family_files`); a regression test regenerates them and
fails on drift, so the files and the builders cannot diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path

from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.services import SetUpdate
from repro.hltl.formulas import HLTLProperty, HLTLSpec, cond
from repro.logic.conditions import And, ArithAtom, Eq, Not, Or, RelationAtom
from repro.logic.terms import Const, NULL, id_var, num_var
from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import const as linconst, var as linvar
from repro.ltl.formulas import Always

#: The sizes each family ships at (and the regeneration test enforces).
FAMILY_SIZES: dict[str, tuple[int, ...]] = {
    "order_fulfillment": (1, 2, 3, 4),
    "ticketing": (1, 2, 3, 4, 6, 8),
    "billing": (1, 2, 4, 6, 8, 12),
}


@dataclass(frozen=True)
class FamilyScenario:
    """One family member: a HAS plus its two expected-verdict properties."""

    family: str
    size: int
    has: HAS
    properties: tuple[tuple[HLTLProperty, str], ...]
    """``(property, expect)`` pairs; expect is ``holds`` or ``violated``."""

    @property
    def name(self) -> str:
        return f"{self.family}-{self.size}"


# ----------------------------------------------------------------------
# order fulfillment: n parallel warehouse children (width scaling)
# ----------------------------------------------------------------------
def order_fulfillment_family(size: int) -> FamilyScenario:
    """A root order task with ``size`` warehouse children.

    *holds*: the bound order row is re-derived by every root service and
    never touched by a child (children take the order id as input and
    write nothing back), so ``G(order = null ∨ ORDERS(order, …))`` is
    invariant at every width.

    *violated*: the database leaves order totals unconstrained, so a run
    can bind a negative total regardless of width.
    """
    if size < 1:
        raise ValueError("order_fulfillment size must be at least 1")
    schema = DatabaseSchema(
        (
            Relation(
                "ORDERS",
                (numeric("total"), foreign_key("warehouse", "WAREHOUSES")),
            ),
            Relation("WAREHOUSES", (numeric("capacity"),)),
        )
    )
    of_order = id_var("of_order")
    of_total = num_var("of_total")
    of_wh = id_var("of_wh")
    place = InternalService(
        "Place",
        post=RelationAtom("ORDERS", (of_order, of_total, of_wh)),
    )
    children = []
    for k in range(size):
        w_order = id_var(f"w{k}_order")
        w_wh = id_var(f"w{k}_wh")
        w_cap = num_var(f"w{k}_cap")
        children.append(
            Task(
                name=f"Warehouse{k}",
                variables=(w_order, w_wh, w_cap),
                services=(
                    InternalService(
                        f"Reserve{k}",
                        post=And(
                            RelationAtom("WAREHOUSES", (w_wh, w_cap)),
                            ArithAtom(compare(linvar(w_cap), Rel.GE, linconst(0))),
                        ),
                    ),
                ),
                opening=OpeningService(
                    pre=Not(Eq(of_order, NULL)),
                    input_map={w_order: of_order},
                ),
                closing=ClosingService(pre=Not(Eq(w_wh, NULL))),
            )
        )
    root = Task(
        name="OrderFulfillment",
        variables=(of_order, of_total, of_wh),
        services=(place,),
        opening=OpeningService(),
        closing=ClosingService(),
        children=tuple(children),
    )
    has = HAS(schema, root, name=f"order_fulfillment_n{size}")
    safety = HLTLProperty(
        HLTLSpec(
            root.name,
            Always(
                cond(
                    Or(
                        Eq(of_order, NULL),
                        RelationAtom("ORDERS", (of_order, of_total, of_wh)),
                    )
                )
            ),
        ),
        name="order_row_rederived",
    )
    bound = HLTLProperty(
        HLTLSpec(
            root.name,
            Always(
                cond(
                    Or(
                        Eq(of_order, NULL),
                        ArithAtom(compare(linvar(of_total), Rel.GE, linconst(0))),
                    )
                )
            ),
        ),
        name="totals_nonnegative",
    )
    return FamilyScenario(
        family="order_fulfillment",
        size=size,
        has=has,
        properties=((safety, "holds"), (bound, "violated")),
    )


# ----------------------------------------------------------------------
# ticketing: a depth-D escalation chain over an artifact relation
# ----------------------------------------------------------------------
def ticketing_family(size: int) -> FamilyScenario:
    """A ticket queue storing tickets in its artifact relation, with an
    escalation chain nested ``size`` levels deep.

    *holds*: a non-null ticket in hand is always a real ``TICKETS`` row
    (every service at every level re-derives it).

    *violated*: severities are unconstrained by the schema, so a run can
    pick a ticket of any severity at any depth.
    """
    if size < 1:
        raise ValueError("ticketing depth must be at least 1")
    schema = DatabaseSchema(
        (
            Relation(
                "TICKETS",
                (numeric("severity"), foreign_key("agent", "AGENTS")),
            ),
            Relation("AGENTS", (numeric("workload"),)),
        )
    )
    tq_ticket = id_var("tq_ticket")
    tq_agent = id_var("tq_agent")
    tq_sev = num_var("tq_sev")
    ticket_atom = RelationAtom("TICKETS", (tq_ticket, tq_sev, tq_agent))

    # the escalation chain, innermost level first
    child: Task | None = None
    for level in range(size, 0, -1):
        e_ticket = id_var(f"e{level}_ticket")
        e_agent = id_var(f"e{level}_agent")
        e_sev = num_var(f"e{level}_sev")
        parent_ticket = tq_ticket if level == 1 else id_var(f"e{level - 1}_ticket")
        child = Task(
            name=f"Escalate{level}",
            variables=(e_ticket, e_agent, e_sev),
            services=(
                InternalService(
                    f"Review{level}",
                    post=RelationAtom("TICKETS", (e_ticket, e_sev, e_agent)),
                ),
            ),
            opening=OpeningService(
                pre=Not(Eq(parent_ticket, NULL)),
                input_map={e_ticket: parent_ticket},
            ),
            closing=ClosingService(pre=Not(Eq(e_agent, NULL))),
            children=(child,) if child is not None else (),
        )
    assert child is not None
    root = Task(
        name="TicketQueue",
        variables=(tq_ticket, tq_agent, tq_sev),
        set_variables=(tq_ticket,),
        services=(
            # Triage is what first binds a ticket (File/Pick touch the
            # artifact relation and need one in hand / in store)
            InternalService("Triage", post=ticket_atom),
            InternalService(
                "File",
                pre=Not(Eq(tq_ticket, NULL)),
                post=ticket_atom,
                update=SetUpdate.INSERT,
            ),
            InternalService("Pick", post=ticket_atom, update=SetUpdate.RETRIEVE),
        ),
        opening=OpeningService(),
        closing=ClosingService(),
        children=(child,),
    )
    has = HAS(schema, root, name=f"ticketing_d{size}")
    safety = HLTLProperty(
        HLTLSpec(
            root.name,
            Always(cond(Or(Eq(tq_ticket, NULL), ticket_atom))),
        ),
        name="ticket_row_exists",
    )
    bound = HLTLProperty(
        HLTLSpec(
            root.name,
            Always(
                cond(
                    Or(
                        Eq(tq_ticket, NULL),
                        ArithAtom(compare(linvar(tq_sev), Rel.LE, linconst(2))),
                    )
                )
            ),
        ),
        name="severity_bounded",
    )
    return FamilyScenario(
        family="ticketing",
        size=size,
        has=has,
        properties=((safety, "holds"), (bound, "violated")),
    )


# ----------------------------------------------------------------------
# billing: K plan tiers, each a linear-arithmetic rate band
# ----------------------------------------------------------------------
def billing_family(size: int) -> FamilyScenario:
    """A billing task with ``size`` tier services, each charging within
    its own linear rate band (``tier ≤ amount ≤ tier + 1`` per unit).

    *holds*: every tier's post-condition forces a nonnegative amount, so
    ``G(invoice = null ∨ amount ≥ 0)`` is invariant at every tier count.

    *violated*: no tier bounds the amount from above by 100 (the top
    tier's band exceeds it, and re-binding to another row is free), so
    ``G(invoice = null ∨ amount ≤ 100)`` fails at every tier count.
    """
    if size < 1:
        raise ValueError("billing tiers must be at least 1")
    schema = DatabaseSchema(
        (
            Relation(
                "INVOICES",
                (numeric("amount"), foreign_key("plan", "PLANS")),
            ),
            Relation("PLANS", (numeric("rate"),)),
        )
    )
    b_inv = id_var("b_inv")
    b_plan = id_var("b_plan")
    b_amount = num_var("b_amount")
    b_rate = num_var("b_rate")
    invoice_atom = RelationAtom("INVOICES", (b_inv, b_amount, b_plan))
    services = []
    for k in range(size):
        lo = Fraction(200 * k)
        # the rate band lives in the post: each tier binds a plan row
        # whose rate clears the tier floor and charges a nonnegative
        # amount — preconditions on unbound plan rows would deadlock
        services.append(
            InternalService(
                f"ChargeTier{k}",
                post=And(
                    invoice_atom,
                    RelationAtom("PLANS", (b_plan, b_rate)),
                    ArithAtom(compare(linvar(b_rate), Rel.GE, linconst(lo))),
                    ArithAtom(compare(linvar(b_amount), Rel.GE, linconst(0))),
                ),
            )
        )
    root = Task(
        name="Billing",
        variables=(b_inv, b_plan, b_amount, b_rate),
        services=tuple(services),
        opening=OpeningService(),
        closing=ClosingService(),
    )
    has = HAS(schema, root, name=f"billing_k{size}")
    safety = HLTLProperty(
        HLTLSpec(
            root.name,
            Always(
                cond(
                    Or(
                        Eq(b_inv, NULL),
                        ArithAtom(compare(linvar(b_amount), Rel.GE, linconst(0))),
                    )
                )
            ),
        ),
        name="amounts_nonnegative",
    )
    bound = HLTLProperty(
        HLTLSpec(
            root.name,
            Always(
                cond(
                    Or(
                        Eq(b_inv, NULL),
                        ArithAtom(
                            compare(linvar(b_amount), Rel.LE, linconst(100))
                        ),
                    )
                )
            ),
        ),
        name="amounts_capped",
    )
    return FamilyScenario(
        family="billing",
        size=size,
        has=has,
        properties=((safety, "holds"), (bound, "violated")),
    )


_BUILDERS = {
    "order_fulfillment": order_fulfillment_family,
    "ticketing": ticketing_family,
    "billing": billing_family,
}


def family_names() -> tuple[str, ...]:
    return tuple(_BUILDERS)


def build_family(family: str, size: int) -> FamilyScenario:
    """One family member; raises ``KeyError`` for unknown family names."""
    try:
        builder = _BUILDERS[family]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise KeyError(f"unknown family {family!r} (known: {known})") from None
    return builder(size)


def family_scenarios() -> list[FamilyScenario]:
    """Every family at every shipped size, deterministic order."""
    return [
        build_family(family, size)
        for family in family_names()
        for size in FAMILY_SIZES[family]
    ]


def render_family_scenario(scenario: FamilyScenario) -> str:
    """The scenario as a ``.has`` document (the PR 5 printer), with a
    header naming the generating builder — regeneration, not editing,
    is how these files change."""
    from repro.dsl import render_scenario

    header = (
        f"# {scenario.name}: generated by "
        f"repro.workloads.families.build_family"
        f"({scenario.family!r}, {scenario.size})\n"
        f"# Regenerate with write_family_files(); edits here are "
        f"overwritten and fail the drift test.\n\n"
    )
    return header + render_scenario(
        scenario.has, properties=list(scenario.properties)
    )


def families_dir() -> Path:
    """The shipped ``.has`` family gallery (next to the package)."""
    return Path(__file__).parent / "families"


def write_family_files(directory: Path | str | None = None) -> list[Path]:
    """(Re)generate every family ``.has`` file; returns the paths."""
    directory = Path(directory) if directory is not None else families_dir()
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for scenario in family_scenarios():
        path = directory / f"{scenario.name.replace('-', '_')}.has"
        path.write_text(render_family_scenario(scenario))
        paths.append(path)
    return paths
