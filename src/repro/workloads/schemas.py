"""Database schema generators for the three schema classes of Tables 1–2.

The schema class controls ``F(δ)`` and hence the navigation-set size
(Figure 4 / Appendix C.3), which drives the verification complexity.
"""

from __future__ import annotations

from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric


def acyclic_chain_schema(length: int, numeric_attrs: int = 1) -> DatabaseSchema:
    """R_0 → R_1 → … → R_{length-1}: the simplest acyclic shape."""
    relations = []
    for index in range(length):
        attrs = [numeric(f"a{j}") for j in range(numeric_attrs)]
        if index + 1 < length:
            attrs.append(foreign_key("next", f"R{index + 1}"))
        relations.append(Relation(f"R{index}", tuple(attrs)))
    return DatabaseSchema(tuple(relations))


def star_schema(points: int, numeric_attrs: int = 1) -> DatabaseSchema:
    """A fact table referencing ``points`` dimension tables — the Star
    schema the paper singles out as the practically dominant case."""
    relations = [
        Relation(f"DIM{i}", tuple(numeric(f"a{j}") for j in range(numeric_attrs)))
        for i in range(points)
    ]
    fact_attrs = [numeric("measure")] + [
        foreign_key(f"dim{i}", f"DIM{i}") for i in range(points)
    ]
    relations.append(Relation("FACT", tuple(fact_attrs)))
    return DatabaseSchema(tuple(relations))


def linear_cycle_schema(length: int, numeric_attrs: int = 1) -> DatabaseSchema:
    """R_0 → R_1 → … → R_{length-1} → R_0: one simple cycle through every
    relation (each relation on exactly one cycle: linearly-cyclic)."""
    relations = []
    for index in range(length):
        attrs = [numeric(f"a{j}") for j in range(numeric_attrs)]
        attrs.append(foreign_key("next", f"R{(index + 1) % length}"))
        relations.append(Relation(f"R{index}", tuple(attrs)))
    return DatabaseSchema(tuple(relations))


def cyclic_schema(relations_count: int, fanout: int = 2) -> DatabaseSchema:
    """Every relation references ``fanout`` others — many overlapping
    cycles, the worst case of Tables 1–2."""
    relations = []
    for index in range(relations_count):
        attrs = [numeric("a0")]
        for k in range(fanout):
            target = (index + 1 + k) % relations_count
            attrs.append(foreign_key(f"f{k}", f"R{target}"))
        relations.append(Relation(f"R{index}", tuple(attrs)))
    return DatabaseSchema(tuple(relations))
