"""The generated gallery catalog for docs/dsl.md.

The gallery grew past hand-maintained-table size when coverage-promoted
fuzz survivors landed (``fuzzed_*.has``, see docs/testing.md), so the
docs table is generated: :func:`render_gallery_table` renders the block
between the ``gallery-table`` markers in ``docs/dsl.md``, and
``tests/test_gallery.py`` asserts the checked-in block matches —
regenerate with::

    python -c "from repro.workloads.gallery_index import update_docs; update_docs()"

Curated scenarios keep their hand-written feature notes
(:data:`CURATED_NOTES`); promoted survivors are summarized by verdict
so the table stays readable at any gallery size.
"""

from __future__ import annotations

from pathlib import Path

#: Hand-written feature notes for the curated scenarios, in display
#: order.  Adding a curated scenario means adding its row here (the
#: drift test fails loudly otherwise); promoted ``fuzzed_*`` files are
#: summarized automatically and never appear in this dict.
CURATED_NOTES: dict[str, str] = {
    "order_fulfillment": "two children, race (blocking counterexample)",
    "loan_approval": "the repaired guard",
    "insurance_claim": "linear arithmetic, unpinned variable bug (lasso)",
    "ticketing_escalation": "artifact relation, two properties",
    "inventory_restock": "`insert+retrieve` set updates",
    "payroll_budget": "file-pinned `km_budget: 40`",
    "library_loans": "3-hop FK-chain navigation",
    "subscription_billing": "liveness, infinite renewals (lasso)",
    "procurement_chain": "depth-3 hierarchy, nested child formulas",
    "shipping_routes": "cyclic (self-referential) schema",
}

BEGIN_MARKER = "<!-- gallery-table:begin (generated, do not edit) -->"
END_MARKER = "<!-- gallery-table:end -->"


def gallery_entries() -> list[tuple[str, list[str]]]:
    """``(file stem, [expect, …])`` for every gallery scenario, sorted
    by file name (the suite's job order)."""
    from repro.dsl import load_document
    from repro.service.suites import gallery_dir

    entries = []
    for path in sorted(gallery_dir().glob("*.has")):
        doc = load_document(path)
        entries.append((path.stem, [entry.expect for entry in doc.properties]))
    return entries


def render_gallery_table() -> str:
    """The markdown between the docs/dsl.md gallery-table markers."""
    entries = dict(gallery_entries())
    missing = [stem for stem in CURATED_NOTES if stem not in entries]
    if missing:
        raise ValueError(f"curated scenarios missing from the gallery: {missing}")
    uncatalogued = [
        stem
        for stem in entries
        if stem not in CURATED_NOTES and not stem.startswith("fuzzed_")
    ]
    if uncatalogued:
        raise ValueError(
            f"new curated scenarios need a CURATED_NOTES row: {uncatalogued}"
        )

    lines = ["| scenario | features | verdict |", "|---|---|---|"]
    for stem, note in CURATED_NOTES.items():
        verdict = " + ".join(entries[stem])
        lines.append(f"| `{stem}` | {note} | {verdict} |")

    promoted = {
        stem: expects
        for stem, expects in entries.items()
        if stem.startswith("fuzzed_")
    }
    total_jobs = sum(len(expects) for expects in entries.values())
    lines.append("")
    lines.append(
        f"plus **{len(promoted)} coverage-promoted fuzz survivors** "
        f"(`fuzzed_*.has` — replay-confirmed scenarios a guided campaign "
        f"found coverage-novel, promoted with "
        f"`repro.fuzz.promote_survivors`; recipe in "
        f"[testing.md](testing.md)):"
    )
    lines.append("")
    lines.append("| verdict | promoted scenarios | of which grown mutants |")
    lines.append("|---|---|---|")
    for verdict in ("holds", "violated"):
        matching = [s for s, e in promoted.items() if e == [verdict]]
        mutants = sum(1 for s in matching if "_m" in s.split("_i", 1)[-1])
        lines.append(f"| {verdict} | {len(matching)} | {mutants} |")
    lines.append("")
    lines.append(
        f"{len(entries)} files, {total_jobs} jobs, under twenty seconds in "
        f"total; together with the `families` suite the shipped scenario "
        f"set stays at 100+ jobs (contract pinned in "
        f"`tests/test_families.py`)."
    )
    return "\n".join(lines)


def docs_path() -> Path:
    return Path(__file__).resolve().parents[3] / "docs" / "dsl.md"


def update_docs(path: Path | str | None = None) -> Path:
    """Rewrite the marked block in docs/dsl.md; returns the path."""
    path = Path(path) if path else docs_path()
    text = path.read_text()
    begin = text.index(BEGIN_MARKER)
    end = text.index(END_MARKER)
    updated = (
        text[: begin + len(BEGIN_MARKER)]
        + "\n"
        + render_gallery_table()
        + "\n"
        + text[end:]
    )
    path.write_text(updated)
    return path
