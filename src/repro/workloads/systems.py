"""Parametric HAS families realizing the cells of Tables 1 and 2.

``table1_workload`` / ``table2_workload`` build, for a chosen schema class
and feature set (artifact relations yes/no, arithmetic yes/no), a HAS of
scalable size: a linear hierarchy of depth ``h`` in which every task walks
the foreign-key structure, optionally stores/retrieves tuples, and
optionally tests linear constraints.  The properties assert data-flow
invariants so the verifier must track navigation, counters, and cells —
exercising exactly the machinery whose cost the tables bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import const as linconst, var as linvar
from repro.database.fkgraph import SchemaClass
from repro.database.schema import AttributeKind, DatabaseSchema
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.services import SetUpdate
from repro.hltl.formulas import HLTLProperty, HLTLSpec, cond
from repro.logic.conditions import (
    And,
    ArithAtom,
    Condition,
    Eq,
    Not,
    Or,
    RelationAtom,
    TRUE,
)
from repro.logic.terms import Const, NULL, Variable, id_var, num_var
from repro.ltl.formulas import Always, Formula
from repro.workloads.schemas import (
    acyclic_chain_schema,
    cyclic_schema,
    linear_cycle_schema,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark point: a HAS plus the property to check and the
    expected verdict."""

    name: str
    has: HAS
    prop: HLTLProperty
    expected_holds: bool
    schema_class: SchemaClass
    depth: int
    uses_sets: bool
    uses_arithmetic: bool


def _schema_for(schema_class: SchemaClass, size: int) -> DatabaseSchema:
    if schema_class is SchemaClass.ACYCLIC:
        return acyclic_chain_schema(max(2, size))
    if schema_class is SchemaClass.LINEARLY_CYCLIC:
        return linear_cycle_schema(max(2, size))
    return cyclic_schema(max(2, size))


def _cursor_atom(
    schema: DatabaseSchema, relation: str, prefix: str
) -> tuple[RelationAtom, Variable, Variable, tuple[Variable, ...]]:
    """``R(cursor, …)`` with fresh variables per position; returns the
    atom, the cursor, the first numeric variable, and all the others."""
    cursor = id_var(f"{prefix}_cur")
    price = num_var(f"{prefix}_p")
    rel = schema.relation(relation)
    args: list = [cursor]
    extras: list[Variable] = []
    used_price = False
    for attribute in rel.attributes:
        if attribute.kind is AttributeKind.NUMERIC:
            if not used_price:
                args.append(price)
                used_price = True
            else:
                extra = num_var(f"{prefix}_{attribute.name}")
                args.append(extra)
                extras.append(extra)
        else:
            extra = id_var(f"{prefix}_{attribute.name}")
            args.append(extra)
            extras.append(extra)
    if not used_price:
        extras.append(price)  # keep the variable even without a position
    return RelationAtom(relation, tuple(args)), cursor, price, tuple(extras)


def _chain_condition(
    schema: DatabaseSchema,
    start_relation: str,
    prefix: str,
    length: int,
) -> tuple[Condition, tuple[Variable, ...]]:
    """A conjunction following the first FK of each relation for ``length``
    steps: R(c0,…,c1) ∧ R'(c1,…,c2) ∧ … — forces the verifier to build
    navigation chains whose size depends on the schema class (Figure 4)."""
    atoms: list[Condition] = []
    variables: list[Variable] = []
    relation = start_relation
    cursor = id_var(f"{prefix}_cur")
    variables.append(cursor)
    for step in range(length):
        rel = schema.relation(relation)
        fks = rel.foreign_keys
        if not fks:
            break
        args: list = [cursor]
        next_cursor = None
        for attribute in rel.attributes:
            if attribute.kind is AttributeKind.NUMERIC:
                extra = num_var(f"{prefix}_s{step}_{attribute.name}")
                args.append(extra)
                variables.append(extra)
            else:
                hop = id_var(f"{prefix}_c{step + 1}_{attribute.name}")
                args.append(hop)
                variables.append(hop)
                if attribute.name == fks[0].name:
                    next_cursor = hop
        atoms.append(RelationAtom(relation, tuple(args)))
        assert next_cursor is not None
        cursor = next_cursor
        relation = fks[0].references
    return And(*atoms) if atoms else TRUE, tuple(variables)


def _build_system(
    schema_class: SchemaClass,
    schema_size: int,
    depth: int,
    with_sets: bool,
    with_arith: bool,
    chain: int = 0,
) -> HAS:
    schema = _schema_for(schema_class, schema_size)
    names = schema.names
    child: Task | None = None
    for level in range(depth - 1, -1, -1):
        prefix = f"L{level}"
        relation = names[level % len(names)]
        atom, cursor, price, extras = _cursor_atom(schema, relation, prefix)
        post: Condition = atom
        if chain > 0:
            chain_cond, chain_vars = _chain_condition(
                schema, relation, f"{prefix}_ch", chain
            )
            post = And(post, chain_cond, Eq(id_var(f"{prefix}_ch_cur"), cursor))
            extras = extras + tuple(
                v for v in chain_vars if v not in extras and v != cursor
            )
        if with_arith:
            post = And(post, ArithAtom(compare(linvar(price), Rel.GE, linconst(0))))
        services = [InternalService(f"{prefix}_step", pre=TRUE, post=post)]
        set_vars: tuple[Variable, ...] = ()
        if with_sets:
            set_vars = (cursor,)
            services.append(
                InternalService(
                    f"{prefix}_store",
                    pre=Not(Eq(cursor, NULL)),
                    post=post,
                    update=SetUpdate.INSERT,
                )
            )
            services.append(
                InternalService(
                    f"{prefix}_load", pre=TRUE, post=post, update=SetUpdate.RETRIEVE
                )
            )
        if level == 0:
            opening = OpeningService()
            closing = ClosingService()
        else:
            parent_cursor = id_var(f"L{level - 1}_cur")
            opening = OpeningService(
                pre=Not(Eq(parent_cursor, NULL)), input_map={}
            )
            closing = ClosingService(pre=Not(Eq(cursor, NULL)), output_map={})
        task = Task(
            name=prefix,
            variables=(cursor, price) + extras,
            set_variables=set_vars,
            services=tuple(services),
            opening=opening,
            closing=closing,
            children=(child,) if child is not None else (),
        )
        child = task
    assert child is not None
    return HAS(
        schema,
        child,
        name=f"{schema_class.value}-h{depth}"
        f"{'-set' if with_sets else ''}{'-arith' if with_arith else ''}",
    )


def _root_atom(has: HAS) -> RelationAtom:
    # atoms() is a frozenset whose iteration order varies with the hash
    # seed; pick deterministically (cursor-anchored first, then by repr)
    # so the generated property is stable across processes.
    cursor = has.root.variables[0]
    candidates: list[RelationAtom] = []
    for service in has.root.services:
        for atom in service.post.atoms():
            if isinstance(atom, RelationAtom):
                candidates.append(atom)
    if not candidates:
        raise AssertionError("workload root has no relation atom")
    anchored = [a for a in candidates if a.args and a.args[0] == cursor]
    return min(anchored or candidates, key=repr)


def _safety_property(has: HAS) -> HLTLProperty:
    """G(cursor = null ∨ R(cursor, …)): holds — every service re-derives
    the cursor tuple from the database."""
    atom = _root_atom(has)
    cursor = has.root.variables[0]
    body: Condition = Or(Eq(cursor, NULL), atom)
    formula: Formula = Always(cond(body))
    return HLTLProperty(HLTLSpec(has.root.name, formula), name=f"{has.name}-safety")


def _violation_property(has: HAS) -> HLTLProperty:
    """G(price = 0): violated — walks reach rows of arbitrary price."""
    price = has.root.variables[1]
    formula: Formula = Always(cond(Eq(price, Const(Fraction(0)))))
    return HLTLProperty(HLTLSpec(has.root.name, formula), name=f"{has.name}-violation")


def table1_workload(
    schema_class: SchemaClass,
    schema_size: int = 3,
    depth: int = 2,
    with_sets: bool = False,
    violated: bool = False,
    chain: int = 0,
) -> WorkloadSpec:
    """A Table-1 cell instance (no arithmetic)."""
    has = _build_system(schema_class, schema_size, depth, with_sets, False, chain)
    prop = _violation_property(has) if violated else _safety_property(has)
    return WorkloadSpec(
        name=prop.name,
        has=has,
        prop=prop,
        expected_holds=not violated,
        schema_class=schema_class,
        depth=depth,
        uses_sets=with_sets,
        uses_arithmetic=False,
    )


def table2_workload(
    schema_class: SchemaClass,
    schema_size: int = 3,
    depth: int = 2,
    with_sets: bool = False,
    violated: bool = False,
    chain: int = 0,
) -> WorkloadSpec:
    """A Table-2 cell instance (with linear arithmetic constraints)."""
    has = _build_system(schema_class, schema_size, depth, with_sets, True, chain)
    prop = _violation_property(has) if violated else _safety_property(has)
    return WorkloadSpec(
        name=prop.name,
        has=has,
        prop=prop,
        expected_holds=not violated,
        schema_class=schema_class,
        depth=depth,
        uses_sets=with_sets,
        uses_arithmetic=True,
    )
