"""Parametric HAS families for the Table 1 / Table 2 benchmarks."""

from repro.workloads.schemas import (
    acyclic_chain_schema,
    cyclic_schema,
    linear_cycle_schema,
    star_schema,
)
from repro.workloads.systems import (
    WorkloadSpec,
    table1_workload,
    table2_workload,
)

__all__ = [
    "acyclic_chain_schema",
    "cyclic_schema",
    "linear_cycle_schema",
    "star_schema",
    "WorkloadSpec",
    "table1_workload",
    "table2_workload",
]
