"""Process-global, sampled per-phase wall-clock timers.

Where :mod:`repro.perf.counters` answers *how often* each hot-path cache
hit, this module answers *where the time went*: the verifier's wall
clock decomposes into a handful of phases — Fourier–Motzkin decisions
(``fm``), store canonicalization (``canon``), Karp–Miller expansion
(``expand``), and the post-verdict witness pipeline (``materialize`` /
``replay`` / ``minimize``) — and each phase accumulates its seconds into
one process-global registry that is cheap enough to stay on always.

Like the counters module, this file must not import any other ``repro``
module: the arith and symbolic layers at the bottom of the dependency
graph import it.

Two properties keep the overhead below the PR 3 instrumentation budget
(<3% of wall time, asserted in CI):

* **Sampling** — a phase is timed on every call until ``_SAMPLE_FULL``
  calls have been seen, then only on every ``_SAMPLE_EVERY``-th call;
  :meth:`PhaseTimers.estimate` scales the timed seconds back up by
  ``calls / timed``.  The sampling schedule is a pure function of the
  call count, so it is deterministic and never perturbs the search.
* **Nesting guards** — phases re-enter themselves (a child summary's KM
  expansion runs *inside* the parent's), so each timer tracks its depth
  and only the outermost activation is counted and timed; the
  accumulated seconds are a union of wall time, never a double count.

Timing fields are observational only: they never feed back into any
verdict, witness, node count, or job hash (A/B-tested in
``tests/test_obs.py``).

**Thread-safety** (the km_workers>1 scout runs verifier code on worker
threads — docs/performance.md's audit): every timer — call counts,
sampled seconds, and crucially the nesting-depth guard — is
*thread-local*.  The pre-audit shared depth counter was the genuine
hazard: racing increments could leave a phase's depth stuck above zero,
silently marking every later main-thread activation "nested" and
killing the phase report for the rest of the process.  With per-thread
timers, each thread's token dance is private and cannot corrupt another
thread's.  Reporting (:meth:`PhaseTimers.snapshot` /
:meth:`~PhaseTimers.since` / :meth:`~PhaseTimers.reset`) reads the
*constructing* thread's timers — the process main thread — so scout
threads' sampled time is deliberately discarded with the rest of the
scout's observational output, and reported phase tables describe the
sequential (authoritative) work only.  The :attr:`PhaseTimers.observer`
hook likewise fires only on the reporting thread, keeping attribution's
sampled-seconds channel single-threaded.
"""

from __future__ import annotations

import threading
from time import perf_counter

#: Time every activation until this many outermost calls were seen…
_SAMPLE_FULL = 256
#: …then time only every N-th outermost call.
_SAMPLE_EVERY = 16

#: The phase names the verification stack reports, in display order.
PHASE_NAMES = (
    "fm",
    "canon",
    "expand",
    "materialize",
    "replay",
    "minimize",
)


class _Timer:
    __slots__ = ("calls", "timed", "seconds", "depth")

    def __init__(self) -> None:
        self.calls = 0
        self.timed = 0
        self.seconds = 0.0
        self.depth = 0


class PhaseTimers:
    """A registry of named, nesting-safe, sampled wall-clock timers.

    Usage on a hot path (no context manager — the token dance keeps the
    per-call cost at a dict lookup and two integer operations when the
    call is not sampled)::

        token = PHASES.begin("fm")
        try:
            ...  # the work
        finally:
            PHASES.end("fm", token)

    An optional :attr:`observer` callable ``(name, seconds)`` is invoked
    for every *timed* (outermost, sampled-in) activation as it ends —
    the hook the attribution registry uses to credit sampled fm/canon
    seconds to the scenario construct currently being explored.  It runs
    only on sampled activations, so it inherits the sampling schedule's
    overhead bound.
    """

    __slots__ = ("_main", "_local", "observer")

    def __init__(self) -> None:
        # the constructing thread (the process main thread, for the
        # module-level PHASES) is the reporting thread: its timer dict is
        # what snapshot/since/reset read; other threads get private dicts
        # whose contents die with them (see the module docstring)
        self._main: dict[str, _Timer] = {}
        self._local = threading.local()
        self._local.timers = self._main
        self.observer = None

    def _timers_here(self) -> dict[str, _Timer]:
        timers = getattr(self._local, "timers", None)
        if timers is None:
            timers = self._local.timers = {}
        return timers

    def _get(self, name: str) -> _Timer:
        timers = self._timers_here()
        timer = timers.get(name)
        if timer is None:
            timer = timers[name] = _Timer()
        return timer

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def begin(self, name: str) -> float | None:
        """Enter a phase; returns a token for :meth:`end` (None when this
        activation is nested or sampled out)."""
        timer = self._get(name)
        timer.depth += 1
        if timer.depth > 1:
            return None
        timer.calls += 1
        if timer.calls <= _SAMPLE_FULL or timer.calls % _SAMPLE_EVERY == 0:
            return perf_counter()
        return None

    def end(self, name: str, token: float | None) -> None:
        """Leave a phase entered with :meth:`begin`."""
        timer = self._get(name)
        if timer.depth:
            timer.depth -= 1
        if token is not None:
            timer.timed += 1
            elapsed = perf_counter() - token
            timer.seconds += elapsed
            if self.observer is not None and self._timers_here() is self._main:
                self.observer(name, elapsed)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Directly account fully-measured time to a phase (used when a
        caller already holds both endpoints)."""
        timer = self._get(name)
        timer.calls += calls
        timer.timed += calls
        timer.seconds += seconds

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, float]]:
        """A plain-dict copy: ``{phase: {calls, timed, seconds}}``."""
        return {
            name: {
                "calls": timer.calls,
                "timed": timer.timed,
                "seconds": timer.seconds,
            }
            for name, timer in self._main.items()
        }

    def since(self, baseline: dict[str, dict[str, float]]) -> dict[str, dict]:
        """Per-phase deltas relative to an earlier :meth:`snapshot`."""
        deltas: dict[str, dict] = {}
        for name, timer in self._main.items():
            base = baseline.get(name, {})
            delta = {
                "calls": timer.calls - base.get("calls", 0),
                "timed": timer.timed - base.get("timed", 0),
                "seconds": timer.seconds - base.get("seconds", 0.0),
            }
            if delta["calls"] or delta["seconds"]:
                deltas[name] = delta
        return deltas

    @staticmethod
    def estimate(delta: dict[str, dict]) -> dict[str, float]:
        """Estimated wall seconds per phase from a snapshot/delta dict,
        scaling sampled time back up to the full call count."""
        estimates: dict[str, float] = {}
        for name, entry in delta.items():
            calls = entry.get("calls", 0)
            timed = entry.get("timed", 0)
            seconds = entry.get("seconds", 0.0)
            if timed and calls > timed:
                seconds = seconds * (calls / timed)
            estimates[name] = seconds
        return estimates

    def reset(self) -> None:
        self._main.clear()
        # a non-main caller's private dict is cleared too, so tests that
        # exercise the registry from a worker thread start clean
        timers = self._timers_here()
        if timers is not self._main:
            timers.clear()


#: The process-global phase-timer registry the verification stack feeds.
PHASES = PhaseTimers()
