"""Process-global, sampled per-phase wall-clock timers.

Where :mod:`repro.perf.counters` answers *how often* each hot-path cache
hit, this module answers *where the time went*: the verifier's wall
clock decomposes into a handful of phases — Fourier–Motzkin decisions
(``fm``), store canonicalization (``canon``), Karp–Miller expansion
(``expand``), and the post-verdict witness pipeline (``materialize`` /
``replay`` / ``minimize``) — and each phase accumulates its seconds into
one process-global registry that is cheap enough to stay on always.

Like the counters module, this file must not import any other ``repro``
module: the arith and symbolic layers at the bottom of the dependency
graph import it.

Two properties keep the overhead below the PR 3 instrumentation budget
(<3% of wall time, asserted in CI):

* **Sampling** — a phase is timed on every call until ``_SAMPLE_FULL``
  calls have been seen, then only on every ``_SAMPLE_EVERY``-th call;
  :meth:`PhaseTimers.estimate` scales the timed seconds back up by
  ``calls / timed``.  The sampling schedule is a pure function of the
  call count, so it is deterministic and never perturbs the search.
* **Nesting guards** — phases re-enter themselves (a child summary's KM
  expansion runs *inside* the parent's), so each timer tracks its depth
  and only the outermost activation is counted and timed; the
  accumulated seconds are a union of wall time, never a double count.

Timing fields are observational only: they never feed back into any
verdict, witness, node count, or job hash (A/B-tested in
``tests/test_obs.py``).
"""

from __future__ import annotations

from time import perf_counter

#: Time every activation until this many outermost calls were seen…
_SAMPLE_FULL = 256
#: …then time only every N-th outermost call.
_SAMPLE_EVERY = 16

#: The phase names the verification stack reports, in display order.
PHASE_NAMES = (
    "fm",
    "canon",
    "expand",
    "materialize",
    "replay",
    "minimize",
)


class _Timer:
    __slots__ = ("calls", "timed", "seconds", "depth")

    def __init__(self) -> None:
        self.calls = 0
        self.timed = 0
        self.seconds = 0.0
        self.depth = 0


class PhaseTimers:
    """A registry of named, nesting-safe, sampled wall-clock timers.

    Usage on a hot path (no context manager — the token dance keeps the
    per-call cost at a dict lookup and two integer operations when the
    call is not sampled)::

        token = PHASES.begin("fm")
        try:
            ...  # the work
        finally:
            PHASES.end("fm", token)

    An optional :attr:`observer` callable ``(name, seconds)`` is invoked
    for every *timed* (outermost, sampled-in) activation as it ends —
    the hook the attribution registry uses to credit sampled fm/canon
    seconds to the scenario construct currently being explored.  It runs
    only on sampled activations, so it inherits the sampling schedule's
    overhead bound.
    """

    __slots__ = ("_timers", "observer")

    def __init__(self) -> None:
        self._timers: dict[str, _Timer] = {}
        self.observer = None

    def _get(self, name: str) -> _Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = _Timer()
        return timer

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def begin(self, name: str) -> float | None:
        """Enter a phase; returns a token for :meth:`end` (None when this
        activation is nested or sampled out)."""
        timer = self._get(name)
        timer.depth += 1
        if timer.depth > 1:
            return None
        timer.calls += 1
        if timer.calls <= _SAMPLE_FULL or timer.calls % _SAMPLE_EVERY == 0:
            return perf_counter()
        return None

    def end(self, name: str, token: float | None) -> None:
        """Leave a phase entered with :meth:`begin`."""
        timer = self._get(name)
        if timer.depth:
            timer.depth -= 1
        if token is not None:
            timer.timed += 1
            elapsed = perf_counter() - token
            timer.seconds += elapsed
            if self.observer is not None:
                self.observer(name, elapsed)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Directly account fully-measured time to a phase (used when a
        caller already holds both endpoints)."""
        timer = self._get(name)
        timer.calls += calls
        timer.timed += calls
        timer.seconds += seconds

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, float]]:
        """A plain-dict copy: ``{phase: {calls, timed, seconds}}``."""
        return {
            name: {
                "calls": timer.calls,
                "timed": timer.timed,
                "seconds": timer.seconds,
            }
            for name, timer in self._timers.items()
        }

    def since(self, baseline: dict[str, dict[str, float]]) -> dict[str, dict]:
        """Per-phase deltas relative to an earlier :meth:`snapshot`."""
        deltas: dict[str, dict] = {}
        for name, timer in self._timers.items():
            base = baseline.get(name, {})
            delta = {
                "calls": timer.calls - base.get("calls", 0),
                "timed": timer.timed - base.get("timed", 0),
                "seconds": timer.seconds - base.get("seconds", 0.0),
            }
            if delta["calls"] or delta["seconds"]:
                deltas[name] = delta
        return deltas

    @staticmethod
    def estimate(delta: dict[str, dict]) -> dict[str, float]:
        """Estimated wall seconds per phase from a snapshot/delta dict,
        scaling sampled time back up to the full call count."""
        estimates: dict[str, float] = {}
        for name, entry in delta.items():
            calls = entry.get("calls", 0)
            timed = entry.get("timed", 0)
            seconds = entry.get("seconds", 0.0)
            if timed and calls > timed:
                seconds = seconds * (calls / timed)
            estimates[name] = seconds
        return estimates

    def reset(self) -> None:
        self._timers.clear()


#: The process-global phase-timer registry the verification stack feeds.
PHASES = PhaseTimers()
