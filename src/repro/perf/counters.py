"""Process-global cache hit/miss counters for the verifier hot paths.

The symbolic search spends nearly all of its time in four places — store
canonicalization, Fourier–Motzkin, successor generation, and child
summaries — and each of them is backed by a memo whose effectiveness
decides whether a verification run is interactive or glacial.  This
module gives those memos one cheap, dependency-free place to report
hits and misses so ``python -m repro bench`` can record hit *rates*
alongside wall time (a regression in a rate usually explains a
regression in the time).

This module must not import any other ``repro`` module: the arith and
symbolic layers (the bottom of the dependency graph) import it.

Counter semantics (hits / misses; rate = hits / (hits + misses)):

* ``store_key``       — :meth:`ConstraintStore.canonical_key` served from
  the store's dirty-bit cache vs recomputed;
* ``constraint_canon`` — per-constraint canonical-form strings inside
  ``canonical_key`` served from the global label-keyed memo;
* ``fm_sat``          — per-component Fourier–Motzkin satisfiability
  verdicts served from the cache;
* ``fm_proj``         — whole ``project_components`` calls served from
  the projection cache;
* ``succ_memo``       — Karp–Miller successor expansions served from the
  per-``TaskVASS`` memo;
* ``child_input``     — child input-store extractions served from the
  engine memo;
* ``summary``         — child task summaries ``R_T`` served from the
  engine memo;
* ``summary_store``   — summary-memo misses served from the persistent
  cross-job summary store (decode-validated hits only; a corrupt or
  stale record counts as a miss).
* ``flock_waits`` / ``flock_acquires`` — advisory write-lock
  acquisitions on the on-disk caches that had to wait for another
  process vs total acquisitions (sharded suites; no "rate" — the
  interesting number is the contention count itself).

**Thread-safety** (docs/performance.md's audit for the km_workers>1
scout): the ``+=`` sites are unsynchronized read-modify-writes, so
concurrent scout threads can lose increments.  This is *documented as
approximate* rather than locked: counters are observational only —
excluded from semantic bytes, nulled on cache hits — the main thread is
parked while scout threads run (so main-thread counts never race), and
a per-increment lock on paths hit millions of times per job would not
clear the instrumentation overhead budget.  Exact counters under
threads would need per-thread cells; revisit if a free-threaded build
makes the loss rate material.
"""

from __future__ import annotations

_COUNTER_NAMES = (
    "store_key_hits",
    "store_key_misses",
    "constraint_canon_hits",
    "constraint_canon_misses",
    "fm_sat_hits",
    "fm_sat_misses",
    "fm_proj_hits",
    "fm_proj_misses",
    "succ_memo_hits",
    "succ_memo_misses",
    "child_input_hits",
    "child_input_misses",
    "summary_hits",
    "summary_misses",
    "summary_store_hits",
    "summary_store_misses",
    "flock_acquires",
    "flock_waits",
)


class PerfCounters:
    """A bag of named integer counters with snapshot/diff support."""

    __slots__ = _COUNTER_NAMES

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in _COUNTER_NAMES:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of every counter."""
        return {name: getattr(self, name) for name in _COUNTER_NAMES}

    def since(self, baseline: dict[str, int]) -> dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return {
            name: getattr(self, name) - baseline.get(name, 0)
            for name in _COUNTER_NAMES
        }

    @staticmethod
    def rates(counters: dict[str, int]) -> dict[str, float | None]:
        """Hit rates per cache from a snapshot/delta dict.

        A cache that was never consulted reports ``None`` — distinct from
        a true 0% hit rate (consulted, every lookup missed).  Renderers
        (``bench``, ``report``, suite reports) show ``None`` as ``n/a``.
        """
        rates: dict[str, float | None] = {}
        for name in _COUNTER_NAMES:
            if not name.endswith("_hits"):
                continue
            cache = name[: -len("_hits")]
            hits = counters.get(name, 0)
            misses = counters.get(f"{cache}_misses", 0)
            total = hits + misses
            rates[cache] = hits / total if total else None
        return rates


#: The process-global counter registry the hot-path caches increment.
COUNTERS = PerfCounters()
