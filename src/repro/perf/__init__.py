"""Performance instrumentation and the tracked benchmark harness.

Two pieces:

* :mod:`repro.perf.counters` — a process-global registry of cache
  hit/miss counters incremented by the hot-path caches (constraint-store
  canonical keys, Fourier–Motzkin satisfiability and projection,
  successor memoization, child summaries).  Reading it costs a dict
  copy; incrementing it costs one integer add, so the counters stay on
  even in production runs.
* :mod:`repro.perf.bench` — named benchmark families over the Table 1/2
  workload grids and the travel example, recorded to machine-readable
  ``BENCH_<family>.json`` files and regression-compared against a
  tracked baseline (``python -m repro bench --record / --compare``).

Only the counters are re-exported here: the arith and symbolic layers
import them from the bottom of the dependency graph, so this package
``__init__`` must not pull in the bench harness (which imports the
service layer).  Import the harness explicitly via
``from repro.perf import bench`` / ``repro.perf.bench``.

See ``docs/performance.md`` for what each cache memoizes, the
invariants that keep them sound, and how to read the recorded files.
"""

from repro.perf.counters import COUNTERS, PerfCounters

__all__ = ["COUNTERS", "PerfCounters"]
