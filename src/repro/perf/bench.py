"""The tracked benchmark harness: record families, compare baselines.

A *family* is a named, deterministic bundle of verification jobs drawn
from the Table 1/2 workload grids (``repro.workloads``) and the travel
example — the same workloads the paper benchmarks.  The ``incremental``
family instead measures the verify → edit one service → re-verify
workflow through the persistent summary store (fuzz-derived
edit-adjacent pairs; see :func:`_incremental_pairs`).  ``run_family``
executes one family in-process, measuring

* **wall time** — best of ``reps`` repetitions of the whole bundle
  (min, not mean: the minimum is the least noisy estimator of the code's
  actual cost under scheduler jitter);
* **KM nodes** — total symbolic states constructed (deterministic for
  the deterministic families; a *throughput* proxy for the time-boxed
  one);
* **cache hit rates** — from :mod:`repro.perf.counters`, measured on the
  first repetition only (later reps would over-report warm-cache rates
  that a fresh process never sees);
* **verdict fingerprint** — per-job (name, status, km_nodes), asserted
  stable so a "speedup" that changed semantics is caught immediately.

``record_families`` writes one ``BENCH_<family>.json`` per family;
``compare_records`` flags wall-time regressions beyond a threshold
(default 15%) against a previously recorded baseline directory.  The
JSON schema is documented in docs/performance.md; the tracked baselines
live in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.database.fkgraph import SchemaClass
from repro.errors import BudgetExceeded, ReproError
from repro.examples.travel import (
    discount_policy_property,
    discount_policy_property_lite,
    travel_booking,
    travel_lite,
)
from repro.perf.counters import COUNTERS, PerfCounters
from repro.perf.phases import PHASES, PhaseTimers
from repro.verifier.config import VerifierConfig
from repro.verifier.engine import Verifier
from repro.workloads import table1_workload, table2_workload

#: Bump when the BENCH_*.json layout changes incompatibly.
#: v2 added the sampled per-phase timing block (``"phases"``) and
#: null rates for never-consulted caches; v1 records stay loadable.
BENCH_SCHEMA_VERSION = 2

#: Schema versions :func:`load_record` accepts (old baselines included).
_ACCEPTED_SCHEMA_VERSIONS = frozenset({1, BENCH_SCHEMA_VERSION})

_ALL_CLASSES = (
    SchemaClass.ACYCLIC,
    SchemaClass.LINEARLY_CYCLIC,
    SchemaClass.CYCLIC,
)


@dataclass(frozen=True)
class BenchJob:
    """One (system, property, config) cell of a family."""

    name: str
    has: object
    prop: object
    config: VerifierConfig


def _table_family(builder) -> list[BenchJob]:
    """The full Table 1/2 grid of one builder: every schema class, with
    and without artifact relations, holding and violated, plus the
    navigation-chain and depth-3 variants — the same cells the service
    suites run."""
    config = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)
    jobs = []
    for schema_class in _ALL_CLASSES:
        for with_sets in (False, True):
            for violated in (False, True):
                spec = builder(
                    schema_class, depth=2, with_sets=with_sets, violated=violated
                )
                jobs.append(BenchJob(spec.name, spec.has, spec.prop, config))
        chained = builder(schema_class, depth=2, chain=2)
        jobs.append(
            BenchJob(f"{chained.name}+chain2", chained.has, chained.prop, config)
        )
        deep = builder(schema_class, depth=3)
        jobs.append(BenchJob(deep.name, deep.has, deep.prop, config))
    return jobs


def _travel_lite_family() -> list[BenchJob]:
    config = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)
    jobs = []
    for fixed in (False, True):
        has = travel_lite(fixed)
        jobs.append(
            BenchJob(
                f"{has.name}::lite-discount-policy",
                has,
                discount_policy_property_lite(has),
                config,
            )
        )
    return jobs


def _travel_full_family() -> list[BenchJob]:
    """The six-task Appendix A policy check, wall-clock-boxed.

    The full check needs minutes; boxing it to a fixed deadline turns it
    into a *throughput* benchmark — the interesting series is KM nodes
    explored within the box (higher is better), with wall time pinned at
    the deadline."""
    has = travel_booking(fixed=False)
    config = VerifierConfig(
        km_budget=1_000_000, max_summaries=100_000, time_limit_seconds=10.0
    )
    return [
        BenchJob(
            f"{has.name}::discount-policy (10s box)",
            has,
            discount_policy_property(has),
            config,
        )
    ]


def _scenario_families() -> list[BenchJob]:
    """The parametric scenario families (``repro.workloads.families``):
    every shipped size of every family, so the bench sweeps cost against
    one structural dimension per family (width / depth / branching)."""
    from repro.workloads.families import family_scenarios

    config = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)
    return [
        BenchJob(f"{scenario.has.name}::{prop.name}", scenario.has, prop, config)
        for scenario in family_scenarios()
        for prop, _expect in scenario.properties
    ]


def _incremental_pairs() -> list[tuple[str, BenchJob, BenchJob]]:
    """Edit-adjacent scenario pairs for the ``incremental`` family.

    Each pair is a fuzz-generated base scenario plus the first
    ``add service`` mutant from the grow operators — the canonical
    "verify, edit one service, re-verify" workflow the persistent
    summary store accelerates.  Both sides are fully deterministic
    (seed-derived), so the family's verdict fingerprint is stable.
    The seeds are chosen so every base terminates within budget with a
    multi-task summary set and the warm re-verify actually reuses
    subtrees the edit cannot reach."""
    from repro.fuzz.gen import GenConfig, generate_scenario, grow_scenarios

    gen_config = GenConfig(max_depth=3, max_children=2)
    config = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)
    pairs: list[tuple[str, BenchJob, BenchJob]] = []
    for seed, index in ((1, 1), (6, 0), (7, 1)):
        base = generate_scenario(seed, index, gen_config)
        mutant = next(
            m
            for m in grow_scenarios(base, limit=12)
            if m.mutations[-1].startswith("add service")
        )
        pairs.append(
            (
                base.name,
                BenchJob(f"{base.name}::base", base.has, base.prop, config),
                BenchJob(f"{base.name}::edited", mutant.has, mutant.prop, config),
            )
        )
    return pairs


def _run_incremental(
    pairs: Iterable[tuple[str, BenchJob, BenchJob]]
) -> tuple[float, int, list[dict]]:
    """One pass over the edit-adjacent pairs: for each, a cold verify of
    the base (filling a fresh in-memory summary store), a cold verify of
    the edited scenario (the reference cost), and a warm re-verify of the
    edited scenario against the filled store.  The warm row records how
    much exploration the store saved (``km_nodes_reused``) on top of the
    credited totals — cold and warm ``km_nodes`` agree by construction,
    so the fingerprint also pins reuse being observationally invisible."""
    from repro.service.cache import SummaryStore

    outcomes: list[dict] = []
    km_total = 0
    started = time.perf_counter()
    for name, base, edited in pairs:
        # memory-only and per-pair: every rep starts from the same empty
        # store, keeping the family deterministic across repetitions
        store = SummaryStore()
        for label, job, job_store in (
            ("cold-fill", base, store),
            ("edited-cold", edited, None),
            ("edited-warm", edited, store),
        ):
            verifier = Verifier(job.has, job.config, summary_store=job_store)
            try:
                result = verifier.verify(job.prop)
                status = "holds" if result.holds else "violated"
                km = result.stats.km_nodes
                reused_summaries = result.stats.summaries_reused
                reused_km = result.stats.km_nodes_reused
            except BudgetExceeded as exc:  # pragma: no cover - defensive
                status = "budget_exceeded"
                km = verifier.stats.km_nodes + int(
                    getattr(exc, "states_explored", 0)
                )
                reused_summaries = verifier.stats.summaries_reused
                reused_km = verifier.stats.km_nodes_reused
            except ReproError as exc:  # pragma: no cover - defensive
                status = f"error: {type(exc).__name__}"
                km = reused_summaries = reused_km = 0
            km_total += km
            outcomes.append(
                {
                    "name": f"{name}::{label}",
                    "status": status,
                    "km_nodes": km,
                    "km_nodes_fresh": km - reused_km,
                    "summaries_reused": reused_summaries,
                }
            )
    return time.perf_counter() - started, km_total, outcomes


#: Worker-thread count the ``parallel-km`` family benchmarks against
#: sequential (the acceptance criterion's 4-core configuration).
PARALLEL_KM_WORKERS = 4


def _parallel_km_family() -> list[BenchJob]:
    """A/B cells for the ``parallel-km`` family: each job is run twice
    per pass — ``km_workers=1`` then ``km_workers=PARALLEL_KM_WORKERS``
    — with the process-global caches cleared before *each* side, so the
    recorded speedup is scout-vs-nothing, never warm-vs-cold.  The
    wall-boxed six-task travel cell measures throughput inside the box
    (its parity column reads ``n/a``: truncation points under a
    deadline are timing-dependent on both sides)."""
    config = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)
    jobs = []
    for fixed in (False, True):
        has = travel_lite(fixed)
        jobs.append(
            BenchJob(
                f"{has.name}::lite-discount-policy",
                has,
                discount_policy_property_lite(has),
                config,
            )
        )
    spec = table1_workload(
        SchemaClass.ACYCLIC, depth=2, with_sets=True, violated=True
    )
    jobs.append(BenchJob(spec.name, spec.has, spec.prop, config))
    has_full = travel_booking(fixed=False)
    boxed = VerifierConfig(
        km_budget=1_000_000, max_summaries=100_000, time_limit_seconds=10.0
    )
    jobs.append(
        BenchJob(
            f"{has_full.name}::discount-policy (10s box)",
            has_full,
            discount_policy_property(has_full),
            boxed,
        )
    )
    return jobs


def _run_parallel_km(jobs: Iterable[BenchJob]) -> tuple[float, int, list[dict]]:
    """One pass of the ``parallel-km`` family: sequential vs parallel
    sides per job, cold caches before each, speedup + parity columns."""
    from dataclasses import replace

    from repro.arith import fm
    from repro.symbolic import store as symbolic_store

    outcomes: list[dict] = []
    km_total = 0
    started = time.perf_counter()
    for job in jobs:
        sides: dict[str, dict] = {}
        for side, workers in (("seq", 1), ("par", PARALLEL_KM_WORKERS)):
            fm.clear_caches()
            symbolic_store.clear_canonical_caches()
            verifier = Verifier(job.has, replace(job.config, km_workers=workers))
            side_started = time.perf_counter()
            try:
                result = verifier.verify(job.prop)
                status = "holds" if result.holds else "violated"
                km = result.stats.km_nodes
                witness = [repr(step) for step in result.witness]
            except BudgetExceeded as exc:
                status = "budget_exceeded"
                km = verifier.stats.km_nodes + int(
                    getattr(exc, "states_explored", 0)
                )
                witness = []
            except ReproError as exc:  # pragma: no cover - defensive
                status = f"error: {type(exc).__name__}"
                km = 0
                witness = []
            sides[side] = {
                "status": status,
                "km": km,
                "witness": witness,
                "wall": time.perf_counter() - side_started,
            }
        seq, par = sides["seq"], sides["par"]
        boxed = (
            job.config.time_limit_seconds is not None
            and job.config.time_limit_seconds <= 30.0
        )
        parity = (
            seq["status"] == par["status"]
            and seq["km"] == par["km"]
            and seq["witness"] == par["witness"]
        )
        km_total += par["km"]
        outcomes.append(
            {
                "name": job.name,
                "status": par["status"],
                "km_nodes": par["km"],
                "workers": PARALLEL_KM_WORKERS,
                "seq_wall_seconds": round(seq["wall"], 3),
                "par_wall_seconds": round(par["wall"], 3),
                "speedup": round(seq["wall"] / par["wall"], 3)
                if par["wall"]
                else 0.0,
                "parity": "n/a (wall-boxed)"
                if boxed
                else ("ok" if parity else "MISMATCH"),
            }
        )
    return time.perf_counter() - started, km_total, outcomes


#: ``incremental`` maps to pairs, not jobs — see :data:`_RUNNERS`.
_FAMILIES: dict[str, Callable[[], list]] = {
    "table1": lambda: _table_family(table1_workload),
    "table2": lambda: _table_family(table2_workload),
    "travel-lite": _travel_lite_family,
    "travel-full": _travel_full_family,
    "scenario-families": _scenario_families,
    "incremental": _incremental_pairs,
    "parallel-km": _parallel_km_family,
}

#: Per-family pass runner; everything not listed uses :func:`_run_jobs`.
_RUNNERS: dict[str, Callable[[Iterable], tuple[float, int, list[dict]]]] = {
    "incremental": _run_incremental,
    "parallel-km": _run_parallel_km,
}

#: Families whose KM-node totals are deterministic (no wall-clock box).
#: ``parallel-km`` is excluded *by design*: its per-job rows carry
#: measured speedup columns (wall-clock, never rep-stable); the parity
#: column is instead enforced as a hard contract by
#: tests/test_parallel.py, and drift shows up as a km_nodes throughput
#: regression in :func:`compare_records`.
_DETERMINISTIC = frozenset(
    {"table1", "table2", "travel-lite", "scenario-families", "incremental"}
)


def family_names() -> tuple[str, ...]:
    return tuple(_FAMILIES)


def _run_jobs(jobs: Iterable[BenchJob]) -> tuple[float, int, list[dict]]:
    """One pass over the jobs: (wall seconds, total KM nodes, verdicts)."""
    outcomes: list[dict] = []
    km_total = 0
    started = time.perf_counter()
    for job in jobs:
        verifier = Verifier(job.has, job.config)
        try:
            result = verifier.verify(job.prop)
            status = "holds" if result.holds else "violated"
            km = result.stats.km_nodes
        except BudgetExceeded as exc:
            status = "budget_exceeded"
            # completed explorations plus the one the budget interrupted:
            # a monotone throughput proxy for wall-clock-boxed jobs
            km = verifier.stats.km_nodes + int(
                getattr(exc, "states_explored", 0)
            )
        except ReproError as exc:  # pragma: no cover - defensive
            status = f"error: {type(exc).__name__}"
            km = 0
        km_total += km
        outcomes.append({"name": job.name, "status": status, "km_nodes": km})
    return time.perf_counter() - started, km_total, outcomes


def run_family(name: str, reps: int = 3) -> dict:
    """Run one family ``reps`` times; return the BENCH record dict."""
    try:
        jobs = _FAMILIES[name]()
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise KeyError(f"unknown bench family {name!r} (known: {known})") from None
    # start every family cold: node serials restart per store, so another
    # family's (or an earlier run's) global cache entries would otherwise
    # be hit here, making the recorded rates and walls depend on which
    # families ran before this one in the same process
    from repro.arith import fm
    from repro.symbolic import store as symbolic_store

    fm.clear_caches()
    symbolic_store.clear_canonical_caches()
    # the phase timers sample on absolute call counts (every call until
    # _SAMPLE_FULL, then every _SAMPLE_EVERY-th), so a warm process could
    # leave a short family with zero sampled activations in some phase;
    # resetting makes the recorded phases match a cold-start CLI run
    PHASES.reset()
    deterministic = name in _DETERMINISTIC
    runner = _RUNNERS.get(name, _run_jobs)
    walls: list[float] = []
    km_nodes = 0
    outcomes: list[dict] = []
    counters: dict[str, int] = {}
    phases: dict[str, dict] = {}
    for rep in range(max(1, reps)):
        baseline = COUNTERS.snapshot()
        phases_baseline = PHASES.snapshot()
        wall, km, out = runner(jobs)
        walls.append(wall)
        if rep == 0:
            counters = COUNTERS.since(baseline)
            phases = PHASES.since(phases_baseline)
            km_nodes, outcomes = km, out
        elif deterministic and out != outcomes:
            raise RuntimeError(
                f"family {name!r} is not deterministic across repetitions: "
                f"verdicts changed between rep 0 and rep {rep}"
            )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "family": name,
        "deterministic": deterministic,
        "jobs": outcomes,
        "wall_seconds": min(walls),
        "wall_seconds_all_reps": walls,
        "km_nodes": km_nodes,
        "counters": counters,
        # null = the cache was never consulted this family (not 0%)
        "rates": {
            cache: None if rate is None else round(rate, 4)
            for cache, rate in PerfCounters.rates(counters).items()
        },
        # sampled per-phase timings from rep 0 (calls/timed/seconds raw,
        # estimate extrapolated) — see docs/observability.md
        "phases": {
            "raw": phases,
            "estimate_seconds": {
                name: round(seconds, 6)
                for name, seconds in PhaseTimers.estimate(phases).items()
            },
        },
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }


def measure_trace_overhead(
    family: str = "travel-lite", reps: int = 3
) -> dict:
    """Measure tracing's wall-time overhead on one family.

    Runs ``reps`` interleaved (untraced, traced) pairs — interleaving
    cancels thermal/cache drift that back-to-back blocks would bake into
    one side — and compares best-of-``reps`` walls (min vs min, the same
    estimator ``run_family`` uses).  The traced side writes real JSONL to
    a scratch sink, so the cost of serialization is included.

    Returns ``{"untraced_seconds", "traced_seconds", "overhead"}`` where
    ``overhead`` is the relative slowdown (0.03 = 3%, the documented
    budget in docs/observability.md); negative values (noise) count as 0
    for gating purposes but are reported raw.
    """
    import io

    from repro.obs import trace

    jobs = _FAMILIES[family]()
    from repro.arith import fm
    from repro.symbolic import store as symbolic_store

    untraced: list[float] = []
    traced: list[float] = []
    for _rep in range(max(1, reps)):
        for mode in ("untraced", "traced"):
            fm.clear_caches()
            symbolic_store.clear_canonical_caches()
            if mode == "traced":
                trace.start(io.StringIO())
            try:
                wall, _km, _out = _run_jobs(jobs)
            finally:
                if mode == "traced":
                    trace.stop()
            (traced if mode == "traced" else untraced).append(wall)
    best_untraced = min(untraced)
    best_traced = min(traced)
    return {
        "family": family,
        "reps": reps,
        "untraced_seconds": best_untraced,
        "traced_seconds": best_traced,
        "overhead": (best_traced - best_untraced) / best_untraced
        if best_untraced > 0
        else 0.0,
    }


def measure_attribution_overhead(
    family: str = "travel-lite", reps: int = 3
) -> dict:
    """Measure the always-on attribution registry's wall-time overhead.

    Same interleaved best-of-``reps`` protocol as
    :func:`measure_trace_overhead`, but the A/B variable is
    ``ATTRIBUTION.enabled`` with tracing *off* on both sides — isolating
    the cost of the per-expansion recording and the sampled-phase
    observer hook, which (unlike the tracer) cannot be turned off in
    production runs and must therefore clear the same budget on its own.
    """
    from repro.obs.attribution import ATTRIBUTION

    jobs = _FAMILIES[family]()
    from repro.arith import fm
    from repro.symbolic import store as symbolic_store

    disabled: list[float] = []
    enabled: list[float] = []
    try:
        for _rep in range(max(1, reps)):
            for mode in ("disabled", "enabled"):
                fm.clear_caches()
                symbolic_store.clear_canonical_caches()
                ATTRIBUTION.enabled = mode == "enabled"
                wall, _km, _out = _run_jobs(jobs)
                (enabled if mode == "enabled" else disabled).append(wall)
    finally:
        ATTRIBUTION.enabled = True
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    return {
        "family": family,
        "reps": reps,
        "disabled_seconds": best_disabled,
        "enabled_seconds": best_enabled,
        "overhead": (best_enabled - best_disabled) / best_disabled
        if best_disabled > 0
        else 0.0,
    }


def measure_coverage_overhead(
    family: str = "travel-lite", reps: int = 3
) -> dict:
    """Measure the semantic-coverage registry's wall-time overhead.

    Same interleaved best-of-``reps`` protocol as
    :func:`measure_attribution_overhead`, with ``COVERAGE.enabled`` as
    the A/B variable.  The registry's feature sites live on the
    verifier's hot paths (KM expansion, FM decisions, store absorb, LTL
    tableau), so it must clear the instrumentation budget on its own —
    not just averaged into the traced side.
    """
    from repro.fuzz.coverage import COVERAGE

    jobs = _FAMILIES[family]()
    from repro.arith import fm
    from repro.symbolic import store as symbolic_store

    disabled: list[float] = []
    enabled: list[float] = []
    was = COVERAGE.enabled
    try:
        for _rep in range(max(1, reps)):
            for mode in ("disabled", "enabled"):
                fm.clear_caches()
                symbolic_store.clear_canonical_caches()
                COVERAGE.enabled = mode == "enabled"
                wall, _km, _out = _run_jobs(jobs)
                (enabled if mode == "enabled" else disabled).append(wall)
    finally:
        COVERAGE.enabled = was
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    return {
        "family": family,
        "reps": reps,
        "disabled_seconds": best_disabled,
        "enabled_seconds": best_enabled,
        "overhead": (best_enabled - best_disabled) / best_disabled
        if best_disabled > 0
        else 0.0,
    }


def record_families(
    out_dir: str | Path,
    families: Iterable[str] | None = None,
    reps: int = 3,
    log: Callable[[str], None] = lambda line: print(line, file=sys.stderr),
) -> list[Path]:
    """Run and write ``BENCH_<family>.json`` for each family; returns the
    written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name in families or family_names():
        log(f"bench family {name!r}: running {reps} rep(s)…")
        record = run_family(name, reps=reps)
        path = out / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, sort_keys=True, indent=1) + "\n")
        log(
            f"  wall {record['wall_seconds']:.3f}s  km={record['km_nodes']}  "
            f"rates {record['rates']}  → {path}"
        )
        written.append(path)
    return written


def load_record(path: str | Path) -> dict:
    data = json.loads(Path(path).read_text())
    if data.get("schema_version") not in _ACCEPTED_SCHEMA_VERSIONS:
        accepted = "/".join(str(v) for v in sorted(_ACCEPTED_SCHEMA_VERSIONS))
        raise ValueError(
            f"{path}: bench schema {data.get('schema_version')!r}, "
            f"expected one of {accepted}"
        )
    return data


def compare_records(
    current: dict, baseline: dict, threshold: float = 0.15
) -> tuple[list[str], list[str], list[str]]:
    """Compare one family record against its baseline.

    Returns ``(regressions, drifts, notes)``:

    * *regressions* — wall-time slowdowns beyond ``threshold`` (and
      boxed-family throughput drops);
    * *drifts* — a deterministic family's per-job verdict fingerprint
      changing, which is a **semantic** change (different verdicts or
      node counts for identical inputs), never acceptable as noise;
    * *notes* — informative lines (speedups, node-count changes).
    """
    regressions: list[str] = []
    drifts: list[str] = []
    notes: list[str] = []
    family = current.get("family", "?")
    base_wall = baseline.get("wall_seconds", 0.0)
    cur_wall = current.get("wall_seconds", 0.0)
    if base_wall > 0:
        ratio = cur_wall / base_wall
        if ratio > 1 + threshold:
            regressions.append(
                f"{family}: wall {cur_wall:.3f}s vs baseline {base_wall:.3f}s "
                f"(×{ratio:.2f}, threshold ×{1 + threshold:.2f})"
            )
        else:
            notes.append(
                f"{family}: wall {cur_wall:.3f}s vs baseline {base_wall:.3f}s "
                f"(×{ratio:.2f})"
            )
    if current.get("deterministic") and baseline.get("deterministic"):
        if current.get("jobs") != baseline.get("jobs"):
            drifts.append(
                f"{family}: verdict fingerprint drifted from baseline "
                f"(semantic change, not a perf regression)"
            )
    elif "km_nodes" in baseline:
        base_km, cur_km = baseline["km_nodes"], current.get("km_nodes", 0)
        if base_km and cur_km < base_km * (1 - threshold):
            regressions.append(
                f"{family}: throughput {cur_km} KM nodes vs baseline "
                f"{base_km} within the same box"
            )
        else:
            notes.append(f"{family}: {cur_km} KM nodes vs baseline {base_km}")
    return regressions, drifts, notes


def compare_directories(
    current_dir: str | Path,
    baseline_dir: str | Path,
    threshold: float = 0.15,
    families: "Iterable[str] | None" = None,
) -> tuple[list[str], list[str], list[str]]:
    """Compare every ``BENCH_*.json`` in ``current_dir`` against the
    same-named file in ``baseline_dir``; returns aggregated
    ``(regressions, drifts, notes)`` per :func:`compare_records`.
    Missing baselines are notes, never failures (the soft-gate contract
    until a baseline exists).  ``families`` restricts the comparison to
    the named families — callers that just recorded a subset pass it so
    stale records from earlier runs in the same directory can't fail
    the gate."""
    regressions: list[str] = []
    drifts: list[str] = []
    notes: list[str] = []
    current_files = sorted(Path(current_dir).glob("BENCH_*.json"))
    if families is not None:
        wanted = {f"BENCH_{name}.json" for name in families}
        current_files = [p for p in current_files if p.name in wanted]
    if not current_files:
        notes.append(f"no BENCH_*.json records in {current_dir}")
    for path in current_files:
        base_path = Path(baseline_dir) / path.name
        if not base_path.exists():
            notes.append(f"{path.name}: no baseline in {baseline_dir} (skipped)")
            continue
        fam_regressions, fam_drifts, fam_notes = compare_records(
            load_record(path), load_record(base_path), threshold=threshold
        )
        regressions.extend(fam_regressions)
        drifts.extend(fam_drifts)
        notes.extend(fam_notes)
    return regressions, drifts, notes
