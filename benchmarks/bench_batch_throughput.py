"""Batch verification throughput: worker scaling and cache effect.

The service's value proposition in two series:

* batch wall time for the Table-1 suite at increasing worker counts —
  near-linear speedup up to the machine's core count (on a single-core
  runner the curve is flat; the series prints the measured ratio either
  way);
* a second, fully-cached pass, whose wall time is the cache's O(1)
  lookup cost independent of suite difficulty.
"""

from __future__ import annotations

import os

import pytest

from repro.service.cache import ResultCache
from repro.service.runner import run_batch
from repro.service.suites import build_suite
from repro.verifier.config import VerifierConfig

CONFIG = VerifierConfig(km_budget=60_000, time_limit_seconds=60)
WORKER_COUNTS = (1, 2, 4)


def _suite():
    return build_suite("table1", config=CONFIG)


@pytest.mark.parametrize("workers", WORKER_COUNTS, ids=lambda w: f"w{w}")
def test_batch_workers(benchmark, series_report, workers):
    jobs = _suite()

    def run():
        report = run_batch(jobs, workers=workers)
        assert report.errors == 0
        assert report.unexpected == []
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    series_report.add(
        f"Batch throughput: table1 suite ({len(jobs)} jobs), "
        f"{os.cpu_count()} cores",
        f"workers={workers}",
        f"{report.wall_seconds:.3f}s wall",
    )


def test_batch_cached_pass(benchmark, series_report, tmp_path):
    jobs = _suite()
    cache = ResultCache(tmp_path / "cache")
    cold = run_batch(jobs, workers=1, cache=cache)

    def run():
        report = run_batch(jobs, workers=1, cache=cache)
        assert report.cache_hits == len(jobs)
        return report

    warm = benchmark.pedantic(run, rounds=5, iterations=1)
    series_report.add(
        "Batch cache: cold vs warm pass (table1 suite)",
        "cold (all misses)",
        f"{cold.wall_seconds:.3f}s wall",
    )
    series_report.add(
        "Batch cache: cold vs warm pass (table1 suite)",
        "warm (all hits)",
        f"{warm.wall_seconds:.3f}s wall",
    )


def test_parallel_parity(series_report):
    """Byte-identical semantic outcomes at every worker count."""
    jobs = _suite()
    baseline = [o.semantic_bytes() for o in run_batch(jobs, workers=1).outcomes]
    for workers in WORKER_COUNTS[1:]:
        outcomes = run_batch(jobs, workers=workers).outcomes
        assert [o.semantic_bytes() for o in outcomes] == baseline
    series_report.add(
        "Batch parity",
        f"workers {WORKER_COUNTS} byte-identical outcomes",
        "ok",
    )
