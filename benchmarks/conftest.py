"""Shared benchmark utilities: each bench prints the paper-shaped series
(the rows of Tables 1–2, the curves of Figures 2–4) in addition to the
pytest-benchmark timings."""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "bench_table: prints a paper-shaped table")


class SeriesReport:
    """Collects (experiment, label, value) rows and prints them grouped at
    the end of the session."""

    def __init__(self):
        self.rows: list[tuple[str, str, str]] = []

    def add(self, experiment: str, label: str, value) -> None:
        self.rows.append((experiment, label, str(value)))


_REPORT = SeriesReport()


@pytest.fixture(scope="session")
def series_report():
    return _REPORT


def pytest_terminal_summary(terminalreporter):
    if not _REPORT.rows:
        return
    terminalreporter.write_sep("=", "paper-shape series (reproduction report)")
    current = None
    for experiment, label, value in _REPORT.rows:
        if experiment != current:
            terminalreporter.write_line("")
            terminalreporter.write_line(f"[{experiment}]")
            current = experiment
        terminalreporter.write_line(f"  {label:58s} {value}")
