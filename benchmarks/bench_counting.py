"""Appendix C.3 / D.2 — measured counts vs analytic bounds.

* non-empty cell counts of polynomial families vs the (s·d)^O(k) bound of
  Appendix D.2 (the reason arithmetic costs only one exponential);
* measured TS-type counts during totalization vs the Bell-number bound;
* Karp–Miller graph sizes for the counter machinery.
"""

import pytest

from repro.analysis.counting import cell_count_bound, ts_type_bound
from repro.arith.cells import count_cells
from repro.arith.linexpr import var
from repro.logic.terms import id_var
from repro.symbolic.store import ConstraintStore
from repro.symbolic.tstypes import ts_type_of
from repro.vass import VASS, build_km_graph

x, y, z = var("x"), var("y"), var("z")


@pytest.mark.parametrize("count", (2, 4, 6), ids=lambda c: f"s{c}")
def test_cell_counts_vs_bound(benchmark, series_report, count):
    polys = [x - i for i in range(count - 1)] + [x - y]
    measured = benchmark(count_cells, polys)
    bound = cell_count_bound(len(polys), 1, 2)
    series_report.add(
        "Appendix D.2: non-empty cells vs (s·d)^O(k)",
        f"s = {len(polys)} linear polynomials, k = 2",
        f"measured {measured} ≤ bound {bound} (naive 3^s = {3**len(polys)})",
    )
    assert measured <= bound
    if count > 2:  # x−i polynomials correlate, pruning empty sign vectors
        assert measured < 3 ** len(polys)


@pytest.mark.parametrize("slots", (2, 3), ids=lambda s: f"slots{s}")
def test_ts_type_enumeration(benchmark, series_report, slots, travel_schema=None):
    from repro.database.schema import DatabaseSchema, Relation, numeric

    schema = DatabaseSchema((Relation("R", (numeric("a"),)),))
    variables = tuple(id_var(f"s{i}") for i in range(slots))

    def enumerate_types():
        store = ConstraintStore(schema)
        for v in variables:
            store.node_of(v)
        return list(ts_type_of(store, variables))

    types = benchmark(enumerate_types)
    measured = len({ts for ts, _ in types})
    bound = ts_type_bound(schema, s=slots, k=0)
    series_report.add(
        "Appendix C.3: total TS-types from a fully-unknown store",
        f"{slots} set slots, 1 relation",
        f"measured {measured} ≤ bound {bound}",
    )
    assert measured <= bound


@pytest.mark.parametrize("pumps", (1, 2, 3), ids=lambda p: f"dims{p}")
def test_km_graph_size(benchmark, series_report, pumps):
    vass = VASS(dimension=pumps)
    for dim in range(pumps):
        delta_up = [1 if d == dim else 0 for d in range(pumps)]
        delta_down = [-1 if d == dim else 0 for d in range(pumps)]
        vass.add_action("p", delta_up, "p")
        vass.add_action("p", delta_down, "p")

    graph = benchmark(build_km_graph, vass, "p")
    series_report.add(
        "Section 4.2: Karp–Miller graph size (pump/drain counters)",
        f"{pumps} dimensions",
        f"{len(graph.nodes)} nodes",
    )
    assert not graph.budget_exhausted
