"""Table 2 — verification with arithmetic.

Table 2's message relative to Table 1: arithmetic costs roughly one more
exponential (cells over the numeric expressions join the isomorphism
types).  This bench runs the same workload cells with linear constraints
switched on and reports the measured overhead factor per schema class.
"""

import time

import pytest

from repro.database.fkgraph import SchemaClass
from repro.verifier import Verifier, VerifierConfig
from repro.workloads import table1_workload, table2_workload

CLASSES = (
    SchemaClass.ACYCLIC,
    SchemaClass.LINEARLY_CYCLIC,
    SchemaClass.CYCLIC,
)
CONFIG = VerifierConfig(km_budget=60_000, time_limit_seconds=60)


def _run(spec):
    verifier = Verifier(spec.has, CONFIG)
    result = verifier.verify(spec.prop)
    assert result.holds == spec.expected_holds
    return result


@pytest.mark.parametrize("with_sets", (False, True), ids=("flat", "sets"))
@pytest.mark.parametrize("schema_class", CLASSES, ids=lambda c: c.value)
def test_table2_cell(benchmark, series_report, schema_class, with_sets):
    spec = table2_workload(schema_class, depth=2, with_sets=with_sets, chain=2)
    result = benchmark(_run, spec)
    series_report.add(
        "Table 2 (with arithmetic): symbolic states per cell",
        f"{schema_class.value:16s} {'with sets' if with_sets else 'no sets  '}",
        result.stats.km_nodes,
    )


@pytest.mark.parametrize("schema_class", CLASSES, ids=lambda c: c.value)
def test_arithmetic_overhead(benchmark, series_report, schema_class):
    """Paired measurement: the same cell with and without arithmetic."""
    plain = table1_workload(schema_class, depth=2, chain=1)
    arith = table2_workload(schema_class, depth=2, chain=1)
    t0 = time.perf_counter()
    _run(plain)
    plain_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    benchmark.pedantic(_run, args=(arith,), rounds=1, iterations=1)
    arith_time = time.perf_counter() - t0
    factor = arith_time / max(plain_time, 1e-9)
    series_report.add(
        "Table 2 vs Table 1: arithmetic overhead (wall-time factor)",
        schema_class.value,
        f"×{factor:.2f}  ({plain_time*1000:.1f}ms → {arith_time*1000:.1f}ms)",
    )
    assert factor > 0
