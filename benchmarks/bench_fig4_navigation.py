"""Figure 4 / Appendix C.3 — navigation growth per schema class.

The size driver of both complexity tables: the path count ``F(n)`` and the
navigation-universe size are (i) saturating for acyclic schemas, (ii)
polynomial for linearly-cyclic schemas, (iii) exponential for cyclic
schemas.  This bench measures all three curves and the resulting ``h(T)``
values, reproducing the analysis behind Tables 1–2's columns.
"""

import pytest

from repro.analysis.counting import (
    navigation_depth_h,
    navigation_set_size,
    path_count_F,
)
from repro.database.fkgraph import SchemaClass
from repro.workloads import (
    acyclic_chain_schema,
    cyclic_schema,
    linear_cycle_schema,
    table1_workload,
)

SCHEMAS = {
    "acyclic": acyclic_chain_schema(3),
    "linearly-cyclic": linear_cycle_schema(3),
    "cyclic": cyclic_schema(3),
}


@pytest.mark.parametrize("name", SCHEMAS, ids=list(SCHEMAS))
def test_path_count_curve(benchmark, series_report, name):
    schema = SCHEMAS[name]
    curve = benchmark(
        lambda: [path_count_F(schema, n) for n in (1, 2, 4, 6, 8)]
    )
    series_report.add(
        "Figure 4: F(n) — FK paths of length ≤ n",
        f"{name:16s} n ∈ (1,2,4,6,8)",
        curve,
    )
    if name == "acyclic":
        assert curve[-1] == curve[-2]  # saturates
    if name == "cyclic":
        assert curve[-1] > 4 * curve[1]  # exponential blow-up


@pytest.mark.parametrize("name", SCHEMAS, ids=list(SCHEMAS))
def test_navigation_universe_growth(benchmark, series_report, name):
    schema = SCHEMAS[name]

    def measure():
        return [navigation_set_size(schema, n) for n in (2, 4, 6)]

    curve = benchmark(measure)
    series_report.add(
        "Figure 4: navigation-universe size, depth ∈ (2,4,6)",
        name,
        curve,
    )
    assert curve == sorted(curve)


@pytest.mark.parametrize(
    "schema_class",
    (SchemaClass.ACYCLIC, SchemaClass.LINEARLY_CYCLIC, SchemaClass.CYCLIC),
    ids=lambda c: c.value,
)
def test_h_per_class(benchmark, series_report, schema_class):
    """h(T) at the root of a depth-3 workload hierarchy per class."""
    spec = table1_workload(schema_class, depth=3)
    h_values = benchmark(
        lambda: [
            navigation_depth_h(spec.has, task.name)
            for task in spec.has.bottom_up()
        ]
    )

    def fmt(value: int) -> str:
        # cyclic h(T) is hyperexponential: it can exceed the 4300-digit
        # int→str limit — exactly the tower of exponentials of Table 1
        digits = int(value.bit_length() * 0.30103) + 1
        if digits > 12:
            return f"≈10^{digits - 1}"
        return str(value)

    series_report.add(
        "Figure 4 → Tables 1–2: h(T) bottom-up (leaf … root)",
        schema_class.value,
        [fmt(v) for v in h_values],
    )
    assert h_values == sorted(h_values)
