"""Figure 1 / Appendix A — the travel-booking example, end to end.

Reproduces the paper's running-example narrative: the discount /
cancellation policy of Appendix A.2 is *violated* by the specification as
given (AddHotel and Cancel race after payment) and *holds* after the fix.
Benchmarked on the lite 3-task variant; the full 6-task system of Figure 1
is verified once with a generous budget and reported (it is the expensive
flagship — the paper's own prototype treats it as the stress case).
"""

import os
import time

import pytest

from repro.errors import BudgetExceeded
from repro.examples.travel import (
    discount_policy_property,
    discount_policy_property_lite,
    travel_booking,
    travel_lite,
)
from repro.verifier import Verifier, VerifierConfig

LITE_CONFIG = VerifierConfig(km_budget=200_000, time_limit_seconds=120)


def _verify(has, prop, config):
    return Verifier(has, config).verify(prop)


@pytest.mark.parametrize("fixed", (False, True), ids=("buggy", "fixed"))
def test_travel_lite(benchmark, series_report, fixed):
    has = travel_lite(fixed=fixed)
    prop = discount_policy_property_lite(has)
    result = benchmark(_verify, has, prop, LITE_CONFIG)
    expected = fixed  # fixed ⇒ holds, buggy ⇒ violated
    assert result.holds == expected
    series_report.add(
        "Figure 1 / App. A.2: travel-booking policy (lite variant)",
        f"{'fixed' if fixed else 'buggy'} specification",
        f"holds={result.holds} ({result.stats.km_nodes} states, "
        f"kind={result.witness_kind or '—'})",
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_FULL_TRAVEL", "") != "1",
    reason="full 6-task verification takes tens of minutes; "
    "set REPRO_FULL_TRAVEL=1 to include it",
)
@pytest.mark.parametrize("fixed", (False, True), ids=("buggy", "fixed"))
def test_travel_full(benchmark, series_report, fixed):
    has = travel_booking(fixed=fixed)
    prop = discount_policy_property(has)
    config = VerifierConfig(
        km_budget=1_000_000, max_summaries=100_000, time_limit_seconds=1200
    )
    started = time.time()
    try:
        result = benchmark.pedantic(
            _verify, args=(has, prop, config), rounds=1, iterations=1
        )
        series_report.add(
            "Figure 1: full six-task travel booking",
            f"{'fixed' if fixed else 'buggy'}",
            f"holds={result.holds} in {time.time()-started:.0f}s "
            f"({result.stats.km_nodes} states)",
        )
    except BudgetExceeded as exc:
        series_report.add(
            "Figure 1: full six-task travel booking",
            f"{'fixed' if fixed else 'buggy'}",
            f"search truncated after {time.time()-started:.0f}s "
            f"({exc.states_explored} states) — inconclusive at this budget",
        )


def test_travel_structure(benchmark, series_report):
    """The Figure-1 hierarchy itself, as data."""
    has = benchmark.pedantic(travel_booking, rounds=1, iterations=1)
    lines = []
    for task in has.root.walk():
        parent = has.parent_of(task)
        lines.append(f"{task.name}({'root' if parent is None else parent.name})")
    series_report.add(
        "Figure 1: task hierarchy",
        " → ".join(lines),
        f"depth={has.depth}",
    )
    assert has.depth == 3
