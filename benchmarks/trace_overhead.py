#!/usr/bin/env python
"""CI gate: instrumentation must cost <3% of wall time on travel-lite.

Three measurements, each against the same budget:

* **tracing** — interleaved (untraced, traced) repetitions via
  :func:`repro.perf.bench.measure_trace_overhead`, best-of-N walls;
* **attribution** — interleaved (disabled, enabled) repetitions of the
  always-on search-attribution registry via
  :func:`repro.perf.bench.measure_attribution_overhead`; unlike the
  tracer it has no off switch in production, so its cost is gated
  separately rather than hidden inside the traced side;
* **coverage** — same protocol for the semantic-coverage registry
  (:mod:`repro.fuzz.coverage`), whose feature sites sit on the same
  hot paths and are likewise always on.

Exits 1 when either measured overhead exceeds the budget — the
observability contract in docs/observability.md says the
instrumentation is cheap enough to leave on, and this is the check
that keeps that sentence true.

Usage::

    PYTHONPATH=src python benchmarks/trace_overhead.py [--family F]
        [--reps N] [--budget 0.03]

The default budget (3%) is deliberately generous for CI noise: the
interleaved min-vs-min estimator absorbs most scheduler jitter, and a
genuine hot-path regression (a per-call timer where a sampled one
belongs, say) overshoots 3% by an order of magnitude.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--family", default="travel-lite")
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--budget",
        type=float,
        default=0.03,
        help="maximum relative traced-vs-untraced slowdown (default 0.03)",
    )
    args = parser.parse_args(argv)

    from repro.perf.bench import (
        measure_attribution_overhead,
        measure_coverage_overhead,
        measure_trace_overhead,
    )

    failed = False
    result = measure_trace_overhead(args.family, reps=args.reps)
    overhead = result["overhead"]
    print(
        f"trace overhead on {result['family']} (best of {result['reps']}): "
        f"untraced {result['untraced_seconds']:.3f}s, "
        f"traced {result['traced_seconds']:.3f}s, "
        f"overhead {overhead:+.2%} (budget {args.budget:.0%})"
    )
    if overhead > args.budget:
        print(
            f"FAIL: tracing costs {overhead:.2%} > {args.budget:.0%} budget",
            file=sys.stderr,
        )
        failed = True

    result = measure_attribution_overhead(args.family, reps=args.reps)
    overhead = result["overhead"]
    print(
        f"attribution overhead on {result['family']} "
        f"(best of {result['reps']}): "
        f"disabled {result['disabled_seconds']:.3f}s, "
        f"enabled {result['enabled_seconds']:.3f}s, "
        f"overhead {overhead:+.2%} (budget {args.budget:.0%})"
    )
    if overhead > args.budget:
        print(
            f"FAIL: attribution costs {overhead:.2%} > {args.budget:.0%} budget",
            file=sys.stderr,
        )
        failed = True

    result = measure_coverage_overhead(args.family, reps=args.reps)
    overhead = result["overhead"]
    print(
        f"coverage overhead on {result['family']} "
        f"(best of {result['reps']}): "
        f"disabled {result['disabled_seconds']:.3f}s, "
        f"enabled {result['enabled_seconds']:.3f}s, "
        f"overhead {overhead:+.2%} (budget {args.budget:.0%})"
    )
    if overhead > args.budget:
        print(
            f"FAIL: coverage costs {overhead:.2%} > {args.budget:.0%} budget",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("ok: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
