"""Figure 2 / Theorem 11 — the RB-VASS → HAS + LTL reduction.

The undecidability frontier: plain LTL over Σ is undecidable for HAS via
this construction.  The bench builds (Γ, Φ) for RB-VASS of growing
dimension and reports the construction cost and formula size — linear in
the machine, as the proof requires (a polynomial reduction).
"""

import pytest

from repro.has.restrictions import validate_has
from repro.reductions.rb_vass import RBVASS, RESET
from repro.reductions.theorem11 import formula_size, theorem11_construction


def machine(dimension: int) -> RBVASS:
    rb = RBVASS(dimension=dimension)
    states = [f"q{i}" for i in range(dimension + 1)]
    for index in range(dimension):
        pump = [1 if d == index else (RESET if d == (index + 1) % dimension else 1) for d in range(dimension)]
        drain = [-1 if d == index else 1 for d in range(dimension)]
        rb.add_action(states[index], pump, states[index + 1])
        rb.add_action(states[index + 1], drain, states[index])
    return rb


@pytest.mark.parametrize("dimension", (1, 2, 4, 8), ids=lambda d: f"d{d}")
def test_theorem11_construction(benchmark, series_report, dimension):
    rb = machine(dimension)

    def build():
        return theorem11_construction(rb, "q0", f"q{dimension}")

    artifacts = benchmark(build)
    validate_has(artifacts.has)
    size = formula_size(artifacts.formula.formula)
    tasks = sum(1 for _ in artifacts.has.tasks())
    series_report.add(
        "Figure 2 / Thm 11: RB-VASS → (Γ, Φ) construction",
        f"dimension d = {dimension}",
        f"{tasks} tasks, |Φ| = {size} nodes",
    )
    # the hierarchy of Figure 2: root + P0 + d·(P_i + C_i)
    assert tasks == 2 + 2 * dimension


def test_theorem11_formula_linear_in_actions(benchmark, series_report):
    def build_all():
        sizes = []
        for dimension in (1, 2, 3, 4):
            rb = machine(dimension)
            artifacts = theorem11_construction(rb, "q0", f"q{dimension}")
            sizes.append(formula_size(artifacts.formula.formula))
        return sizes

    sizes = benchmark(build_all)
    growth = [round(b / a, 2) for a, b in zip(sizes, sizes[1:])]
    series_report.add(
        "Figure 2: |Φ| growth per added dimension",
        f"sizes {sizes}",
        f"ratios {growth} (polynomial, as the reduction requires)",
    )
    assert all(b > a for a, b in zip(sizes, sizes[1:]))


def test_rb_vass_bounded_semantics(benchmark, series_report):
    """Sanity: the RB-VASS executable semantics agrees with intent — the
    2-dim machine repeatedly reaches its start state."""
    rb = machine(2)
    found = benchmark(
        rb.repeated_reachable_bounded, "q0", "q0", 4, 50_000
    )
    assert found
    series_report.add(
        "Figure 2: RB-VASS bounded repeated-reachability check",
        "2-dimensional machine, cap 4",
        f"repeatedly reachable = {found}",
    )
