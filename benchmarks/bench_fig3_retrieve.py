"""Figure 3 — the periodic Retrieve construction (Appendix C.1.2).

Reproduces the quantitative content of the construction: the matching is
built in time linear in the unrolled horizon, every retrieval's gap stays
≤ 2t (Lemma 50), and life-cycle timespans stay below the Lemma 51 bound —
the facts that let Theorem 20 realize infinite symbolic runs over finite
databases.
"""

import pytest

from repro.symbolic.retrieve import (
    build_retrieve,
    lemma51_bound,
    life_cycles,
    max_timespan,
)
from repro.symbolic.symbolic_run import PeriodicSymbolicRun, SymbolicStep


def periodic_run(period_pairs: int, prefix_pad: int = 2) -> PeriodicSymbolicRun:
    """Loop of `period_pairs` insert/retrieve pairs over distinct types."""
    steps = [SymbolicStep("open", is_internal=False)]
    steps += [
        SymbolicStep(f"t{i}", True, inserts=True) for i in range(period_pairs)
    ]
    steps += [SymbolicStep("pad", True)] * prefix_pad
    loop = []
    for i in range(period_pairs):
        loop.append(SymbolicStep(f"t{i}", True, inserts=True))
        loop.append(SymbolicStep(f"t{i}", True, retrieves=True))
    loop_start = len(steps)
    return PeriodicSymbolicRun(steps + loop + loop, loop_start, len(loop))


@pytest.mark.parametrize("pairs", (1, 2, 4, 8), ids=lambda p: f"t{2*p}")
def test_retrieve_construction(benchmark, series_report, pairs):
    run = periodic_run(pairs)

    def build():
        return build_retrieve(run, periods=6)

    retrieve = benchmark(build)
    retrieve.check()
    gap = retrieve.max_gap()
    n, t = run.loop_start, run.period
    series_report.add(
        "Figure 3: periodic Retrieve construction",
        f"period t = {t}",
        f"max gap {gap} (prefix n = {n}; Lemma 50 bound beyond prefix: {2*t})",
    )
    for retrieval, insertion in retrieve.mapping.items():
        if retrieval > n + t:
            assert retrieval - insertion <= 2 * t


@pytest.mark.parametrize("pairs", (1, 2, 4), ids=lambda p: f"t{2*p}")
def test_life_cycle_timespans(benchmark, series_report, pairs):
    run = periodic_run(pairs)
    retrieve = build_retrieve(run, periods=8)
    cycles = benchmark(life_cycles, run, retrieve)
    measured = max_timespan(cycles)
    bound = lemma51_bound(run, set_arity=1, child_count=1)
    series_report.add(
        "Figure 3 / Lemma 51: life-cycle timespans",
        f"period t = {run.period}",
        f"measured {measured} ≤ bound {bound}",
    )
    assert measured <= bound
