"""Table 1 — verification without arithmetic.

The paper's Table 1 gives worst-case space bounds per schema class
(acyclic / linearly-cyclic / cyclic) with and without artifact relations.
This bench regenerates the table's *shape* empirically: measured
verification cost (wall time and symbolic states) for one workload per
cell, plus a depth sweep.  Expected ordering per the paper:

* artifact relations add cost in every class (counters + TS-types);
* the schema classes order acyclic ≤ linearly-cyclic ≤ cyclic once
  conditions navigate chains (the navigation-set driver, see Figure 4 /
  bench_fig4);
* cost grows with hierarchy depth h.
"""

import pytest

from repro.database.fkgraph import SchemaClass
from repro.errors import BudgetExceeded
from repro.verifier import Verifier, VerifierConfig
from repro.workloads import table1_workload

CLASSES = (
    SchemaClass.ACYCLIC,
    SchemaClass.LINEARLY_CYCLIC,
    SchemaClass.CYCLIC,
)
CONFIG = VerifierConfig(km_budget=60_000, time_limit_seconds=60)


def _run(spec):
    verifier = Verifier(spec.has, CONFIG)
    result = verifier.verify(spec.prop)
    assert result.holds == spec.expected_holds
    return result


@pytest.mark.parametrize("with_sets", (False, True), ids=("flat", "sets"))
@pytest.mark.parametrize("schema_class", CLASSES, ids=lambda c: c.value)
def test_table1_cell(benchmark, series_report, schema_class, with_sets):
    spec = table1_workload(schema_class, depth=2, with_sets=with_sets, chain=2)
    result = benchmark(_run, spec)
    series_report.add(
        "Table 1 (no arithmetic): symbolic states per cell",
        f"{schema_class.value:16s} {'with sets' if with_sets else 'no sets  '}",
        result.stats.km_nodes,
    )


@pytest.mark.parametrize("depth", (1, 2, 3), ids=lambda d: f"h{d}")
def test_table1_depth_sweep(benchmark, series_report, depth):
    spec = table1_workload(SchemaClass.ACYCLIC, depth=depth, violated=True)
    verifier = Verifier(spec.has, CONFIG)

    def run():
        result = verifier.verify(spec.prop)
        assert result.holds == spec.expected_holds
        return result

    result = benchmark(run)
    series_report.add(
        "Table 1: depth sweep (violated property, acyclic)",
        f"h = {depth}",
        f"{result.stats.km_nodes} states, {result.stats.summaries} summaries",
    )


@pytest.mark.parametrize("schema_class", CLASSES, ids=lambda c: c.value)
def test_table1_violation_search(benchmark, series_report, schema_class):
    spec = table1_workload(schema_class, depth=2, with_sets=True, violated=True)
    result = benchmark(_run, spec)
    series_report.add(
        "Table 1: counterexample search with artifact relations",
        schema_class.value,
        f"{result.stats.km_nodes} states, witness={result.witness_kind}",
    )
