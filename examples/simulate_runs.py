"""Concrete execution: simulate the travel-booking process over a small
database, validate every produced tree of local runs against the
Definition 9/10 checkers, and enumerate the interleavings (global runs)
of one tree — Appendix B.1 made executable.

Run:  python examples/simulate_runs.py
"""

from repro.examples.travel import travel_database, travel_lite
from repro.runtime.global_run import count_linearizations, linearize
from repro.runtime.simulator import SimulationConfig, Simulator
from repro.runtime.tree import validate_run_tree


def main() -> None:
    has = travel_lite(fixed=False)
    db = travel_database()
    sim = Simulator(has, db, SimulationConfig(max_steps=25, seed=11))

    print(f"simulating {has.name} over {db!r}\n")
    best = None
    for index, tree in enumerate(sim.sample_trees(10)):
        validate_run_tree(tree, db)
        steps = sum(len(node.run.steps) for node in tree.walk())
        print(f"tree {index}: {len(tree)} local runs, {steps} steps — valid ✓")
        if best is None or len(tree) > len(best):
            best = tree

    assert best is not None
    print("\nlargest tree, root-task trace:")
    for step in best.root.run.steps:
        print(f"  {step.service!r}")

    interleavings = count_linearizations(has, best, cap=500)
    print(f"\nthis tree induces {interleavings} global run(s) (interleavings)")
    for run in linearize(has, best, limit=1):
        print("one linearization:")
        for config in run:
            active = [t for t, s in config.stages.items() if s.value == "active"]
            print(f"  {config.service!r:40}  active={active}")


if __name__ == "__main__":
    main()
