"""Quickstart for the ``.has`` scenario DSL (``repro.dsl``).

Three steps:

1. parse a scenario written as text and verify it;
2. show the lossless round-trip: the parsed system pretty-prints back
   to a parse fixed point and keeps its content-addressed job hash;
3. load a shipped gallery scenario from disk and explain its bug.

Run:  python examples/dsl_quickstart.py
"""

from repro.dsl import loads, render_document
from repro.service.pool import execute_job
from repro.service.suites import gallery_dir
from repro.dsl import load_document

# ----------------------------------------------------------------------
# 1. a scenario as text
# ----------------------------------------------------------------------
SCENARIO = """
system shop {
  schema {
    relation ITEMS(price: num)
  }

  task Shop {
    vars item: id, price: num
    service Pick {
      post: ITEMS(item, price)
    }
  }
}

property "picked-row-exists" on Shop {
  expect: holds
  formula: G {item = null or ITEMS(item, price)}
}

property "prices-are-zero" on Shop {
  expect: violated
  formula: G {price = 0}
}
"""

doc = loads(SCENARIO, source="shop.has")
print(f"parsed system {doc.system.name!r}: "
      f"{len(list(doc.system.tasks()))} task(s), "
      f"{len(doc.properties)} properties")

for job in doc.jobs():
    outcome = execute_job(job)
    print(f"  {outcome.one_line()}")

# ----------------------------------------------------------------------
# 2. the round-trip guarantees
# ----------------------------------------------------------------------
printed = render_document(doc)
again = loads(printed, source="shop-reprinted.has")
assert render_document(again) == printed, "pretty-print is a parse fixed point"
assert [j.key() for j in again.jobs()] == [j.key() for j in doc.jobs()], (
    "text and reparsed scenarios share content-addressed job hashes"
)
print("round-trip: parse -> print -> parse is a fixed point; job keys stable")

# ----------------------------------------------------------------------
# 3. a gallery scenario from disk
# ----------------------------------------------------------------------
path = gallery_dir() / "order_fulfillment.has"
gallery_doc = load_document(path)
outcome = execute_job(gallery_doc.jobs()[0])
print(f"\ngallery scenario {path.name}: {outcome.one_line()}")
print("see docs/dsl.md for the language reference, and run:")
print("  python -m repro suite gallery")
print(f"  python -m repro explain {path}")
