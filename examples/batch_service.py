"""Batch verification service demo: suites, workers, and the cache.

Runs the Table-1 suite through the batch runner twice — once cold with
a worker pool, once warm against the content-addressed cache — then
shows a custom batch mixing workload jobs with the travel example.

Run with:  PYTHONPATH=src python examples/batch_service.py
"""

from __future__ import annotations

import tempfile

from repro.database.fkgraph import SchemaClass
from repro.examples.travel import discount_policy_property_lite, travel_lite
from repro.service import (
    ResultCache,
    VerificationJob,
    build_suite,
    job_from_spec,
    run_batch,
)
from repro.verifier import VerifierConfig
from repro.workloads import table1_workload


def main() -> None:
    config = VerifierConfig(km_budget=60_000, time_limit_seconds=60)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)

        print("=== table1 suite, cold, 4 workers ===")
        jobs = build_suite("table1", config=config)
        report = run_batch(jobs, workers=4, cache=cache)
        print(report.format_report())

        print()
        print("=== table1 suite, warm: every job served from the cache ===")
        report = run_batch(jobs, workers=4, cache=cache)
        print(report.format_report())
        assert report.cache_hits == len(jobs)

    print()
    print("=== a custom batch: workload cells + the travel policy ===")
    has = travel_lite(fixed=False)
    custom = [
        job_from_spec(table1_workload(SchemaClass.CYCLIC, depth=2), config),
        job_from_spec(
            table1_workload(SchemaClass.ACYCLIC, depth=2, violated=True), config
        ),
        VerificationJob(
            has=has,
            prop=discount_policy_property_lite(has),
            config=config,
            expected_holds=False,  # the paper's concurrency bug
        ),
    ]
    report = run_batch(custom, workers=2)
    print(report.format_report())
    for outcome in report.outcomes:
        if outcome.witness:
            print(f"  witness for {outcome.name}:")
            for step in outcome.witness:
                print(f"    {step}")


if __name__ == "__main__":
    main()
