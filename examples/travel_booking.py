"""The paper's running example (Appendix A): the travel-booking process
and the discount/cancellation policy of Appendix A.2.

Verifies the lite variant symbolically (buggy: violated; fixed: holds),
then realizes the violation *concretely* by random simulation over a small
database — the bug the paper describes: pay for a flight, reserve the
hotel at the discount price, cancel the flight without penalty, which is
possible because AddHotel and Cancel may run concurrently.

Run:  python examples/travel_booking.py           (lite, fast)
      python examples/travel_booking.py --full    (six-task system, slow)
"""

import sys
import time

from repro.examples.travel import (
    discount_policy_property,
    discount_policy_property_lite,
    travel_booking,
    travel_database,
    travel_lite,
)
from repro.hltl.eval_tree import evaluate_on_tree
from repro.runtime.simulator import SimulationConfig, Simulator
from repro.runtime.tree import validate_run_tree
from repro.verifier import VerifierConfig, verify


def check(has, prop, config):
    started = time.time()
    result = verify(has, prop, config)
    print(f"[{has.name}] {result.explain()}")
    print(f"  ({time.time() - started:.1f}s)")
    print()
    return result


def main(full: bool = False) -> None:
    if full:
        config = VerifierConfig(
            km_budget=1_000_000, max_summaries=100_000, time_limit_seconds=1200
        )
        build, prop_of = travel_booking, discount_policy_property
    else:
        config = VerifierConfig(km_budget=200_000)
        build, prop_of = travel_lite, discount_policy_property_lite

    print("=== symbolic verification ===")
    buggy = build(fixed=False)
    check(buggy, prop_of(buggy), config)
    fixed = build(fixed=True)
    check(fixed, prop_of(fixed), config)

    if full:
        return

    print("=== concrete realization of the bug (random simulation) ===")
    db = travel_database()
    prop = prop_of(buggy)
    sim = Simulator(buggy, db, SimulationConfig(max_steps=30, seed=0))
    for index, tree in enumerate(sim.sample_trees(40)):
        validate_run_tree(tree, db)
        if not evaluate_on_tree(prop, tree, db):
            print(f"violating tree found at sample {index}:")
            for step in tree.root.run.steps:
                print(f"  ManageTrips: {step.service!r}")
            for pos, child_node in tree.root.children.items():
                services = ", ".join(repr(s.service) for s in child_node.run.steps)
                print(f"  child at {pos}: {services}")
            break
    else:
        print("no violating tree in the sample (try more samples)")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
