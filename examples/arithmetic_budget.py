"""Arithmetic constraints (Section 5): a budget-approval workflow.

A request for an amount is approved by a child task that may grant at
most the requested amount; spending then never exceeds the budget.  The
verifier tracks linear-arithmetic cells over the numeric variables, the
Section-5 extension of the symbolic representation.

Run:  python examples/arithmetic_budget.py
"""

from fractions import Fraction

from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import const as linconst, var as linvar
from repro.database.schema import DatabaseSchema, Relation, numeric
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.hltl.formulas import HLTLProperty, HLTLSpec, cond, service
from repro.logic.conditions import And, ArithAtom, TRUE
from repro.logic.terms import num_var
from repro.ltl.formulas import Always
from repro.runtime import labels
from repro.verifier import VerifierConfig, verify

schema = DatabaseSchema((Relation("LEDGER", (numeric("balance"),)),))

requested = num_var("requested")
granted = num_var("granted")

a_requested = num_var("a_requested")
a_granted = num_var("a_granted")

approve = InternalService(
    "Approve",
    pre=TRUE,
    # 0 ≤ granted ≤ requested
    post=And(
        ArithAtom(compare(linvar(a_granted), Rel.GE, linconst(0))),
        ArithAtom(compare(linvar(a_granted) - linvar(a_requested), Rel.LE, linconst(0))),
    ),
)
approver = Task(
    name="Approver",
    variables=(a_requested, a_granted),
    services=(approve,),
    opening=OpeningService(
        pre=ArithAtom(compare(linvar(requested), Rel.GT, linconst(0))),
        input_map={a_requested: requested},
    ),
    closing=ClosingService(
        pre=ArithAtom(compare(linvar(a_granted), Rel.GE, linconst(0))),
        output_map={granted: a_granted},
    ),
)

request = InternalService(
    "Request",
    pre=TRUE,
    post=ArithAtom(compare(linvar(requested), Rel.GT, linconst(0))),
)
root = Task(
    name="Budget",
    variables=(requested, granted),
    services=(request,),
    children=(approver,),
)
system = HAS(schema, root, name="budget-approval")

# HOLDS: on return of the approver, the grant never exceeds the request.
# This needs genuine cell reasoning: `granted` is the child's a_granted,
# constrained relative to a_requested = requested at open time.
never_overgranted = HLTLProperty(
    HLTLSpec(
        "Budget",
        Always(
            service(labels.closing("Approver")).implies(
                cond(
                    ArithAtom(
                        compare(linvar(granted) - linvar(requested), Rel.LE, linconst(0))
                    )
                )
            )
        ),
    ),
    name="never-overgranted",
)

# VIOLATED: grants are never strictly positive
never_granted = HLTLProperty(
    HLTLSpec(
        "Budget",
        Always(
            service(labels.closing("Approver")).implies(
                cond(ArithAtom(compare(linvar(granted), Rel.LE, linconst(0))))
            )
        ),
    ),
    name="nothing-ever-granted",
)

if __name__ == "__main__":
    config = VerifierConfig(km_budget=100_000)
    for prop in (never_overgranted, never_granted):
        result = verify(system, prop, config)
        print(result.explain())
        print()
