"""Quickstart: specify a tiny hierarchical artifact system and verify two
HLTL-FO properties against it.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.database.schema import DatabaseSchema, Relation, numeric
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.hltl.formulas import HLTLProperty, HLTLSpec, cond, service
from repro.logic.conditions import Eq, Not, Or, RelationAtom, TRUE
from repro.logic.terms import Const, NULL, id_var, num_var
from repro.ltl.formulas import Always, Eventually
from repro.runtime import labels
from repro.verifier import VerifierConfig, verify

# ----------------------------------------------------------------------
# 1. the database schema: one relation of items with a price
# ----------------------------------------------------------------------
schema = DatabaseSchema((Relation("ITEMS", (numeric("price"),)),))

# ----------------------------------------------------------------------
# 2. a two-task system: the root repeatedly asks a child task to pick an
#    item from the database and stores the result
# ----------------------------------------------------------------------
c_item, c_price = id_var("c_item"), num_var("c_price")
p_item, p_price = id_var("p_item"), num_var("p_price")

picker = Task(
    name="Picker",
    variables=(c_item, c_price),
    services=(
        InternalService("pick", pre=TRUE, post=RelationAtom("ITEMS", (c_item, c_price))),
    ),
    opening=OpeningService(pre=Eq(p_item, NULL), input_map={}),
    closing=ClosingService(
        pre=Not(Eq(c_item, NULL)),
        output_map={p_item: c_item, p_price: c_price},
    ),
)

root = Task(
    name="Main",
    variables=(p_item, p_price),
    services=(InternalService("reset", pre=TRUE, post=Eq(p_item, NULL)),),
    children=(picker,),
)

system = HAS(schema, root, name="quickstart")

# ----------------------------------------------------------------------
# 3. two properties of the root task
# ----------------------------------------------------------------------
# (a) whenever Picker returns, the stored item is non-null — HOLDS
returns_nonnull = HLTLProperty(
    HLTLSpec(
        "Main",
        Always(service(labels.closing("Picker")).implies(cond(Not(Eq(p_item, NULL))))),
    ),
    name="picker-returns-an-item",
)

# (b) the stored price is always zero — VIOLATED (items have other prices)
always_zero = HLTLProperty(
    HLTLSpec("Main", Always(cond(Eq(p_price, Const(Fraction(0)))))),
    name="price-always-zero",
)

if __name__ == "__main__":
    config = VerifierConfig(km_budget=50_000)
    for prop in (returns_nonnull, always_zero):
        result = verify(system, prop, config)
        print(result.explain())
        print()
