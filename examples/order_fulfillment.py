"""Order fulfillment: the batch-processing pattern the paper's Section 6
gives as the canonical use of artifact relations — queue an unbounded
collection of orders, then process each independently with unchanged
input parameters.

The system: a root task queues orders (an artifact relation), and a child
task ships one order at a time.  Two policies are checked:

* every shipped order is a real order of the catalog — HOLDS;
* an order can be shipped before anything was queued — VIOLATED as stated
  positively; we verify the contrapositive: the first action is never a
  dequeue (counter semantics make it impossible).

Run:  python examples/order_fulfillment.py
"""

from fractions import Fraction

from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.services import SetUpdate
from repro.hltl.formulas import HLTLProperty, HLTLSpec, child, cond, service
from repro.logic.conditions import And, Eq, Not, Or, RelationAtom, TRUE
from repro.logic.terms import Const, NULL, id_var, num_var
from repro.ltl.formulas import Always, Eventually, Next, NotF
from repro.runtime import labels
from repro.verifier import VerifierConfig, verify

schema = DatabaseSchema(
    (
        Relation("CUSTOMERS", (numeric("tier"),)),
        Relation(
            "ORDERS",
            (numeric("amount"), foreign_key("customer", "CUSTOMERS")),
        ),
    )
)

# ----------------------------------------------------------------------
# root task: build up a queue of orders in the artifact relation QUEUE
# ----------------------------------------------------------------------
q_order = id_var("q_order")
q_amount = num_var("q_amount")
q_customer = id_var("q_customer")

select_order = InternalService(
    "SelectOrder",
    pre=TRUE,
    post=RelationAtom("ORDERS", (q_order, q_amount, q_customer)),
)
enqueue = InternalService(
    "Enqueue",
    pre=Not(Eq(q_order, NULL)),
    post=Eq(q_order, NULL),
    update=SetUpdate.INSERT,
)
dequeue = InternalService(
    "Dequeue",
    pre=TRUE,
    post=TRUE,
    update=SetUpdate.RETRIEVE,
)

# ----------------------------------------------------------------------
# child task: ship the currently dequeued order
# ----------------------------------------------------------------------
s_order = id_var("s_order")
s_amount = num_var("s_amount")
s_customer = id_var("s_customer")

ship = InternalService(
    "Ship",
    pre=Not(Eq(s_order, NULL)),
    post=And(
        RelationAtom("ORDERS", (s_order, s_amount, s_customer)),
        Not(Eq(s_customer, NULL)),
    ),
)
shipper = Task(
    name="ShipOrder",
    variables=(s_order, s_amount, s_customer),
    services=(ship,),
    opening=OpeningService(pre=Not(Eq(q_order, NULL)), input_map={s_order: q_order}),
    closing=ClosingService(pre=Not(Eq(s_customer, NULL)), output_map={}),
)

dispatcher = Task(
    name="Dispatcher",
    variables=(q_order, q_amount, q_customer),
    set_variables=(q_order,),
    services=(select_order, enqueue, dequeue),
    children=(shipper,),
)

system = HAS(schema, dispatcher, name="order-fulfillment")

# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
# (a) whenever ShipOrder runs, it ends up shipping a real catalog order
#     for a real customer — HOLDS (Ship's post requires it to close)
ships_real_orders = HLTLProperty(
    HLTLSpec(
        "Dispatcher",
        Always(
            service(labels.opening("ShipOrder")).implies(
                child(
                    "ShipOrder",
                    Eventually(cond(Not(Eq(s_customer, NULL)))),
                )
            )
        ),
    ),
    name="ships-real-orders",
)

# (b) the first internal action is never a dequeue: the queue starts empty
#     and counters cannot go negative — HOLDS by the VASS semantics
no_dequeue_first = HLTLProperty(
    HLTLSpec(
        "Dispatcher",
        NotF(Next(service(labels.internal("Dispatcher", "Dequeue")))),
    ),
    name="no-dequeue-before-enqueue",
)

# (c) a dequeued order is always null — VIOLATED: dequeuing restores the
#     stored (non-null) order id into q_order
dequeued_is_null = HLTLProperty(
    HLTLSpec(
        "Dispatcher",
        Always(
            service(labels.internal("Dispatcher", "Dequeue")).implies(
                cond(Eq(q_order, NULL))
            )
        ),
    ),
    name="dequeued-order-null",
)

if __name__ == "__main__":
    config = VerifierConfig(km_budget=100_000)
    for prop in (ships_real_orders, no_dequeue_first, dequeued_is_null):
        result = verify(system, prop, config)
        print(result.explain())
        print()
